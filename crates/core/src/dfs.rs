//! The combined, linear-space engine sketched in Section 2.4 of the paper.
//!
//! "The implementation of Algorithm 1 and Algorithm 3 can be combined.
//! Specifically, the BCAT does not need to be calculated in its entirety.
//! Instead, a depth first traversal of the tree can be performed. This also
//! would reduce the space complexity of the algorithm from exponential down
//! to linear."
//!
//! This module realizes that sketch. Each BCAT node is represented not by a
//! reference set but by its *subtrace* — the original access order filtered
//! to the references mapping to that row. The per-occurrence conflict depth
//! `|S ∩ C|` is then simply the number of distinct references touched within
//! the subtrace since the previous occurrence, computed with a Fenwick tree
//! in `O(m log m)` for a subtrace of length `m`. Children are produced by
//! partitioning the subtrace on the next index bit, the parent subtrace is
//! dropped, and recursion proceeds depth-first — no BCAT, no MRCT, no
//! conflict sets are ever materialized.
//!
//! Output is identical to the tree+table path ([`crate::postlude`]); the
//! test suite asserts equality.

use std::collections::HashMap;

use cachedse_sim::fenwick::Fenwick;
use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::StrippedTrace;

/// Computes the same per-depth miss profiles as
/// [`postlude::level_profiles`](crate::postlude::level_profiles), by
/// depth-first subtrace partitioning.
///
/// # Examples
///
/// ```
/// use cachedse_core::dfs;
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let profiles = dfs::level_profiles(&stripped, 4);
/// assert_eq!(profiles[1].min_associativity(0), 3); // Section 2.3
/// ```
#[must_use]
pub fn level_profiles(stripped: &StrippedTrace, max_index_bits: u32) -> Vec<DepthProfile> {
    let total = stripped.total_len() as u64;
    let unique = stripped.unique_len() as u64;
    let non_cold = total - unique;

    // Tail histograms (d >= 1 entries) per level; d = 0 is reconstructed at
    // the end as "everything not otherwise accounted for".
    let mut histograms: Vec<Vec<u64>> = vec![Vec::new(); max_index_bits as usize + 1];

    // Precompute each reference's address bits once.
    let addrs: Vec<u32> = stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect();

    let root: Vec<u32> = stripped.id_sequence().iter().map(|id| id.raw()).collect();
    visit(&root, 0, max_index_bits, &addrs, &mut histograms);

    histograms
        .into_iter()
        .enumerate()
        .map(|(level, mut histogram)| {
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

/// Multi-threaded variant of [`level_profiles`], realizing the paper's
/// §2.4 remark that "the use of sets allows for execution of the algorithm
/// on a cluster of machines": BCAT subtrees are independent, so the tree is
/// split at a shallow level and the subtrees are processed by a worker pool,
/// each accumulating private histograms that are summed at the end.
///
/// Produces byte-identical results to the serial engine (asserted by the
/// test suite).
///
/// # Examples
///
/// ```
/// use std::num::NonZeroUsize;
/// use cachedse_core::dfs;
/// use cachedse_trace::{generate, strip::StrippedTrace};
///
/// let trace = generate::uniform_random(5_000, 512, 3);
/// let stripped = StrippedTrace::from_trace(&trace);
/// let serial = dfs::level_profiles(&stripped, 9);
/// let parallel = dfs::level_profiles_parallel(
///     &stripped,
///     9,
///     NonZeroUsize::new(4).expect("nonzero"),
/// );
/// assert_eq!(serial, parallel);
/// ```
#[must_use]
pub fn level_profiles_parallel(
    stripped: &StrippedTrace,
    max_index_bits: u32,
    threads: std::num::NonZeroUsize,
) -> Vec<DepthProfile> {
    let total = stripped.total_len() as u64;
    let unique = stripped.unique_len() as u64;
    let non_cold = total - unique;

    let mut histograms: Vec<Vec<u64>> = vec![Vec::new(); max_index_bits as usize + 1];
    let addrs: Vec<u32> = stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect();

    // Split where there are comfortably more subtrees than workers; the
    // levels above the split are cheap (a few passes over the trace) and
    // stay serial.
    let split_level = (usize::BITS - (threads.get() * 4).leading_zeros()).min(max_index_bits);

    let root: Vec<u32> = stripped.id_sequence().iter().map(|id| id.raw()).collect();
    let mut work: Vec<Vec<u32>> = Vec::new();
    gather(
        root,
        0,
        split_level,
        max_index_bits,
        &addrs,
        &mut histograms,
        &mut work,
    );

    if !work.is_empty() {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let locals = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.get())
                .map(|_| {
                    let next = &next;
                    let work = &work;
                    let addrs = &addrs;
                    scope.spawn(move || {
                        let mut local: Vec<Vec<u64>> =
                            vec![Vec::new(); max_index_bits as usize + 1];
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(subtrace) = work.get(i) else { break };
                            visit(subtrace, split_level, max_index_bits, addrs, &mut local);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect::<Vec<_>>()
        });
        for local in locals {
            for (level, hist) in local.into_iter().enumerate() {
                if histograms[level].len() < hist.len() {
                    histograms[level].resize(hist.len(), 0);
                }
                for (slot, v) in histograms[level].iter_mut().zip(hist) {
                    *slot += v;
                }
            }
        }
    }

    histograms
        .into_iter()
        .enumerate()
        .map(|(level, mut histogram)| {
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

/// Serial prefix of the parallel engine: processes levels above
/// `split_level` exactly like [`visit`], but instead of recursing past the
/// split it parks the surviving subtraces on the work list.
#[allow(clippy::too_many_arguments)]
fn gather(
    subtrace: Vec<u32>,
    level: u32,
    split_level: u32,
    max_index_bits: u32,
    addrs: &[u32],
    histograms: &mut [Vec<u64>],
    work: &mut Vec<Vec<u32>>,
) {
    if level == split_level {
        work.push(subtrace);
        return;
    }
    accumulate(&subtrace, &mut histograms[level as usize]);
    if level == max_index_bits {
        return;
    }
    let bit = 1u32 << level;
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    let mut left_reuse = false;
    let mut right_reuse = false;
    let mut left_unique = 0usize;
    let mut right_unique = 0usize;
    let mut seen: HashMap<u32, ()> = HashMap::with_capacity(subtrace.len());
    for &id in &subtrace {
        let repeated = seen.insert(id, ()).is_some();
        if addrs[id as usize] & bit == 0 {
            left.push(id);
            left_reuse |= repeated;
            left_unique += usize::from(!repeated);
        } else {
            right.push(id);
            right_reuse |= repeated;
            right_unique += usize::from(!repeated);
        }
    }
    drop(seen);
    drop(subtrace);
    if left_reuse && left_unique >= 2 {
        gather(
            left,
            level + 1,
            split_level,
            max_index_bits,
            addrs,
            histograms,
            work,
        );
    } else {
        drop(left);
    }
    if right_reuse && right_unique >= 2 {
        gather(
            right,
            level + 1,
            split_level,
            max_index_bits,
            addrs,
            histograms,
            work,
        );
    }
}

/// Processes one node: accumulate this level's conflict depths, partition on
/// the next index bit, recurse.
fn visit(
    subtrace: &[u32],
    level: u32,
    max_index_bits: u32,
    addrs: &[u32],
    histograms: &mut [Vec<u64>],
) {
    accumulate(subtrace, &mut histograms[level as usize]);
    if level == max_index_bits {
        return;
    }

    let bit = 1u32 << level;
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    // A child needs visiting only if it can produce a nonzero conflict
    // depth: some reference recurs in it AND it holds at least two distinct
    // references. Repeat-free or single-reference subtraces contribute only
    // d = 0 entries, which the caller reconstructs globally. (Every
    // occurrence of a reference lands on the same side — the address bit is
    // a property of the reference — so per-child uniqueness is well defined.)
    let mut left_reuse = false;
    let mut right_reuse = false;
    let mut left_unique = 0usize;
    let mut right_unique = 0usize;
    let mut seen: HashMap<u32, ()> = HashMap::with_capacity(subtrace.len());
    for &id in subtrace {
        let repeated = seen.insert(id, ()).is_some();
        if addrs[id as usize] & bit == 0 {
            left.push(id);
            left_reuse |= repeated;
            left_unique += usize::from(!repeated);
        } else {
            right.push(id);
            right_reuse |= repeated;
            right_unique += usize::from(!repeated);
        }
    }
    drop(seen);
    if left_reuse && left_unique >= 2 {
        visit(&left, level + 1, max_index_bits, addrs, histograms);
    }
    drop(left);
    if right_reuse && right_unique >= 2 {
        visit(&right, level + 1, max_index_bits, addrs, histograms);
    }
}

/// Fenwick-tree sweep over one subtrace: histogram (for `d ≥ 1`) of the
/// number of distinct references between consecutive occurrences.
fn accumulate(subtrace: &[u32], histogram: &mut Vec<u64>) {
    let mut fenwick = Fenwick::new(subtrace.len());
    let mut last: HashMap<u32, usize> = HashMap::new();
    for (t, &id) in subtrace.iter().enumerate() {
        if let Some(prev) = last.insert(id, t) {
            let d = fenwick.range_sum(prev + 1, t) as usize;
            if d > 0 {
                if histogram.len() <= d {
                    histogram.resize(d + 1, 0);
                }
                histogram[d] += 1;
            }
            fenwick.add(prev, -1);
        }
        fenwick.add(t, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcat::Bcat;
    use crate::mrct::Mrct;
    use crate::postlude;
    use cachedse_sim::onepass::profile_depths;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn tree_table(trace: &Trace, bits: u32) -> Vec<DepthProfile> {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, bits)
    }

    fn depth_first(trace: &Trace, bits: u32) -> Vec<DepthProfile> {
        level_profiles(&StrippedTrace::from_trace(trace), bits)
    }

    #[test]
    fn paper_example_equivalence() {
        let trace = paper_running_example();
        assert_eq!(depth_first(&trace, 4), tree_table(&trace, 4));
        assert_eq!(depth_first(&trace, 4), profile_depths(&trace, 4));
    }

    #[test]
    fn workload_equivalence() {
        for trace in [
            generate::loop_pattern(0x80, 40, 25),
            generate::strided(16, 32, 48, 5),
            generate::uniform_random(1_500, 200, 23),
            generate::working_set_phases(5, 200, 30, 41),
        ] {
            let bits = trace.address_bits().min(9);
            assert_eq!(depth_first(&trace, bits), tree_table(&trace, bits));
        }
    }

    #[test]
    fn empty_trace() {
        let profiles = depth_first(&Trace::new(), 3);
        assert_eq!(profiles.len(), 4);
        for p in &profiles {
            assert_eq!(p.misses_at(1), 0);
            assert_eq!(p.accesses(), 0);
        }
    }

    #[test]
    fn requesting_more_bits_than_addresses_is_safe() {
        let trace: Trace = [1u32, 2, 1, 2]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let profiles = depth_first(&trace, 10);
        assert_eq!(profiles.len(), 11);
        assert_eq!(profiles[0].misses_at(1), 2);
        for p in &profiles[1..] {
            assert_eq!(p.misses_at(1), 0);
        }
    }

    /// The depth-first engine, the tree+table engine, and one-pass
    /// simulation agree on arbitrary traces.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn three_way_equivalence() {
        let mut rng = SplitMix64::seed_from_u64(0x3417);
        for _ in 0..48 {
            let len = rng.gen_range(1usize..250);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..80))))
                .collect();
            let max_bits = rng.gen_range(0u32..8);
            let dfs = depth_first(&trace, max_bits);
            assert_eq!(&dfs, &tree_table(&trace, max_bits));
            assert_eq!(&dfs, &profile_depths(&trace, max_bits));
        }
    }

    /// The parallel engine is byte-identical to the serial one for any
    /// trace, bit budget, and worker count.
    #[test]
    fn parallel_equals_serial() {
        let mut rng = SplitMix64::seed_from_u64(0x9A8);
        for _ in 0..32 {
            let len = rng.gen_range(1usize..300);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..120))))
                .collect();
            let max_bits = rng.gen_range(0u32..9);
            let threads = rng.gen_range(1usize..6);
            let stripped = StrippedTrace::from_trace(&trace);
            let serial = level_profiles(&stripped, max_bits);
            let parallel = level_profiles_parallel(
                &stripped,
                max_bits,
                std::num::NonZeroUsize::new(threads).expect("nonzero"),
            );
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn parallel_on_workload_shapes() {
        for trace in [
            generate::loop_with_excursions(0, 128, 80, 11, 1 << 14, 9),
            generate::working_set_phases(8, 400, 64, 2),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            let bits = trace.address_bits();
            let serial = level_profiles(&stripped, bits);
            for threads in [1, 2, 8] {
                let parallel = level_profiles_parallel(
                    &stripped,
                    bits,
                    std::num::NonZeroUsize::new(threads).expect("nonzero"),
                );
                assert_eq!(serial, parallel, "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_empty_trace() {
        let profiles = level_profiles_parallel(
            &StrippedTrace::from_trace(&Trace::new()),
            4,
            std::num::NonZeroUsize::new(3).expect("nonzero"),
        );
        assert_eq!(
            profiles,
            level_profiles(&StrippedTrace::from_trace(&Trace::new()), 4)
        );
    }
}
