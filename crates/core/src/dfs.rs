//! The combined, linear-space engine sketched in Section 2.4 of the paper.
//!
//! "The implementation of Algorithm 1 and Algorithm 3 can be combined.
//! Specifically, the BCAT does not need to be calculated in its entirety.
//! Instead, a depth first traversal of the tree can be performed. This also
//! would reduce the space complexity of the algorithm from exponential down
//! to linear."
//!
//! This module realizes that sketch. Each BCAT node is represented not by a
//! reference set but by its *subtrace* — the original access order filtered
//! to the references mapping to that row. The per-occurrence conflict depth
//! `|S ∩ C|` is then simply the number of distinct references touched within
//! the subtrace since the previous occurrence, computed with a Fenwick tree
//! in `O(m log m)` for a subtrace of length `m`.
//!
//! ## Memory layout: the hot path is allocation-free
//!
//! The recursion threads a reusable [`Scratch`] arena through every node
//! (see `DESIGN.md` §10):
//!
//! * **Per-level partition buffers.** One `Vec<u32>` per tree level, sized
//!   on first use and never freed. A node at level `l` reads its subtrace
//!   from a slice of `levels[l]` and partitions it *in place* into
//!   `levels[l + 1]` with stable two-pointer writes (left side forward from
//!   the front, right side backward from the back, then the right segment
//!   is reversed to restore trace order). Because traversal is depth-first,
//!   the right sibling's slice in `levels[l + 1]` stays intact while the
//!   entire left subtree runs out of `levels[l + 2..]`.
//! * **Epoch-stamped scratch sets.** Seen-tracking and last-occurrence
//!   tracking use dense arrays indexed by `RefId` (`seen_epoch`,
//!   `last_pos`) with a generation counter bumped once per node — no
//!   clearing, no hashing. The counter survives wraparound: after 2^32
//!   sweeps the stamp array is cleared once and the cycle restarts.
//! * **One Fenwick tree for the whole traversal.** Each sweep leaves a `+1`
//!   only at the final occurrence of each distinct reference, so the tree
//!   is restored to all-zeroes in `O(unique · log m)` by undoing exactly
//!   the touched positions — never reallocated, never rebuilt.
//! * **Small-set fast path.** A node with at most [`SMALL_SET_MAX`]
//!   distinct references (the count is known exactly from its parent's
//!   sweep) skips the Fenwick entirely: the live final-occurrence
//!   positions fit a sorted L1-resident array, where a conflict depth is
//!   one binary search and the undo is `clear()`. Long traces over small
//!   working sets — instruction streams above all — take this path at
//!   every level.
//!
//! The accumulate and partition passes of the old engine are fused into a
//! single sweep per node: one read of the subtrace feeds the Fenwick
//! conflict-depth histogram *and* writes both children.
//!
//! Output is identical to the tree+table path ([`crate::postlude`]); the
//! test suite asserts equality.

use cachedse_sim::fenwick::Fenwick;
use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::StrippedTrace;

/// Minimum parked-subtrace length before the parallel gather stops
/// splitting: shorter pieces cost more in scheduling than they recover in
/// balance.
const MIN_PARK_LEN: usize = 2_048;

/// Target number of parked work items for the parallel engine. Independent
/// of the worker count so the serial split prefix — and therefore the
/// result — is identical for every `threads` value.
const TARGET_WORK_ITEMS: usize = 32;

/// Nodes with at most this many distinct references answer conflict-depth
/// queries from a sorted array of live positions instead of the Fenwick
/// tree. The array is at most 4 KiB — resident in L1 — so a binary search
/// plus a short `memmove` beats three logarithmic walks over a tree
/// spanning the whole subtrace (which for a long trace with few uniques,
/// e.g. an instruction fetch stream, misses cache on nearly every step).
const SMALL_SET_MAX: usize = 1_024;

/// Reusable scratch state for the depth-first traversal.
///
/// Created once per engine run (or once per worker in the parallel
/// engine) and reused across every node, so the steady-state inner loop
/// performs zero heap allocation.
#[derive(Clone, Debug)]
struct Scratch {
    /// `levels[l]` holds the subtrace data of the node(s) currently being
    /// traversed at level `l`; children are partitioned into
    /// `levels[l + 1]`.
    levels: Vec<Vec<u32>>,
    /// `seen_epoch[id] == epoch` ⇔ `id` was already touched by the current
    /// node's sweep.
    seen_epoch: Vec<u32>,
    /// Position of `id`'s most recent occurrence within the current sweep
    /// (valid only when `seen_epoch[id] == epoch`).
    last_pos: Vec<u32>,
    /// Distinct ids touched by the current sweep, recorded for the
    /// `O(touched)` Fenwick undo.
    touched: Vec<u32>,
    /// Sorted final-occurrence positions of the current sweep's distinct
    /// references — the small-set alternative to the Fenwick tree, used
    /// when the node holds at most [`SMALL_SET_MAX`] uniques.
    live: Vec<u32>,
    /// Generation stamp of the current sweep.
    epoch: u32,
    /// The shared conflict-depth counter tree, undone after every sweep.
    /// Grown lazily: traces whose every node fits the small-set path never
    /// allocate it.
    fenwick: Fenwick,
}

impl Scratch {
    /// A scratch arena for traces with `ref_count` unique references.
    fn new(ref_count: usize) -> Self {
        Self {
            levels: Vec::new(),
            seen_epoch: vec![0; ref_count],
            last_pos: vec![0; ref_count],
            touched: Vec::with_capacity(ref_count),
            live: Vec::with_capacity(ref_count.min(SMALL_SET_MAX)),
            epoch: 0,
            fenwick: Fenwick::new(0),
        }
    }

    /// Makes sure buffers exist for levels `0..=max_level`. Only ever
    /// grows; in steady state this is a no-op. (The Fenwick tree grows
    /// lazily inside the sweep, so small-unique traces never allocate it.)
    fn ensure(&mut self, max_level: u32) {
        let want = max_level as usize + 1;
        if self.levels.len() < want {
            self.levels.resize_with(want, Vec::new);
        }
    }

    /// Starts a new sweep generation. On the (2^32)-th sweep the stamp
    /// wraps; one full clear of the stamp array makes stale stamps from the
    /// previous cycle impossible.
    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen_epoch.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Loads `data` as the subtrace buffer at `level` (entry point for the
    /// root and for parked parallel work items).
    fn load(&mut self, level: u32, data: &[u32]) {
        let buf = &mut self.levels[level as usize];
        buf.clear();
        buf.extend_from_slice(data);
    }
}

/// What one fused sweep learned about a node's children.
#[derive(Clone, Copy, Debug)]
struct SweepOutcome {
    /// Length of the left child's subtrace (`levels[l + 1][0..left_len]`).
    left_len: usize,
    /// Length of the right child's subtrace
    /// (`levels[l + 1][left_len..left_len + right_len]`).
    right_len: usize,
    /// Distinct references in the left child (the child's `unique` hint).
    left_unique: usize,
    /// Distinct references in the right child.
    right_unique: usize,
    /// The left child can still produce nonzero conflict depths.
    visit_left: bool,
    /// The right child can still produce nonzero conflict depths.
    visit_right: bool,
}

/// One fused pass over the node occupying `levels[level][start..start +
/// len]`: feeds the conflict-depth histogram for this level and (when
/// `PARTITION`) splits the subtrace on index bit `level` into
/// `levels[level + 1]`.
///
/// A child needs visiting only if it can produce a nonzero conflict depth:
/// some reference recurs in it AND it holds at least two distinct
/// references. Repeat-free or single-reference subtraces contribute only
/// `d = 0` entries, which the caller reconstructs globally. (Every
/// occurrence of a reference lands on the same side — the address bit is a
/// property of the reference — so per-child uniqueness is well defined.)
///
/// `unique` is the node's exact distinct-reference count (known from the
/// parent's sweep; the root uses the stripped trace's unique count). Nodes
/// at or under [`SMALL_SET_MAX`] answer depth queries from the sorted
/// `live` array; larger nodes use the Fenwick tree.
fn sweep<const PARTITION: bool>(
    scratch: &mut Scratch,
    level: u32,
    start: usize,
    len: usize,
    unique: usize,
    addrs: &[u32],
    histogram: &mut Vec<u64>,
) -> SweepOutcome {
    let epoch = scratch.next_epoch();
    let small = unique <= SMALL_SET_MAX;
    let Scratch {
        levels,
        seen_epoch,
        last_pos,
        touched,
        live,
        fenwick,
        ..
    } = scratch;
    touched.clear();
    live.clear();
    if !small && fenwick.len() < len {
        *fenwick = Fenwick::new(len);
    }

    let mut empty: [u32; 0] = [];
    let (src, dst): (&[u32], &mut [u32]) = if PARTITION {
        let (head, tail) = levels.split_at_mut(level as usize + 1);
        let dst = &mut tail[0];
        if dst.len() < len {
            dst.resize(len, 0);
        }
        (&head[level as usize][start..start + len], &mut dst[..len])
    } else {
        (&levels[level as usize][start..start + len], &mut empty)
    };

    let bit = 1u32 << level;
    let mut left_len = 0usize;
    let mut right_write = len;
    let mut left_reuse = false;
    let mut right_reuse = false;
    let mut left_unique = 0usize;
    let mut right_unique = 0usize;

    for (t, &id) in src.iter().enumerate() {
        let idx = id as usize;
        let repeated = seen_epoch[idx] == epoch;
        if repeated {
            let prev = last_pos[idx];
            let d = if small {
                // `live` holds one sorted position per distinct reference
                // seen so far (its most recent occurrence), all `< t`, so
                // the conflict depth is the count of entries after `prev` —
                // and moving this reference's position to `t` is one short
                // in-L1 shift plus a push.
                let at = live
                    .binary_search(&prev)
                    .expect("previous occurrence is live");
                let d = live.len() - at - 1;
                live.remove(at);
                d
            } else {
                let d = fenwick.range_sum(prev as usize + 1, t) as usize;
                fenwick.add(prev as usize, -1);
                d
            };
            if d > 0 {
                if histogram.len() <= d {
                    histogram.resize(d + 1, 0);
                }
                histogram[d] += 1;
            }
        } else {
            seen_epoch[idx] = epoch;
            if !small {
                touched.push(id);
            }
        }
        last_pos[idx] = t as u32;
        if small {
            live.push(t as u32);
        } else {
            fenwick.add(t, 1);
        }

        if PARTITION {
            if addrs[idx] & bit == 0 {
                dst[left_len] = id;
                left_len += 1;
                left_reuse |= repeated;
                left_unique += usize::from(!repeated);
            } else {
                right_write -= 1;
                dst[right_write] = id;
                right_reuse |= repeated;
                right_unique += usize::from(!repeated);
            }
        }
    }

    // Undo path. Small sets just clear the live array; for the Fenwick,
    // only the final occurrence of each distinct reference still carries a
    // +1, so O(touched) point updates restore all-zeroes.
    if small {
        debug_assert!(live.len() <= unique, "more live positions than uniques");
        live.clear();
    } else {
        for &id in touched.iter() {
            fenwick.add(last_pos[id as usize] as usize, -1);
        }
        debug_assert_eq!(
            fenwick.prefix_sum(len),
            0,
            "fenwick sweep was not fully undone"
        );
    }

    if PARTITION {
        debug_assert_eq!(right_write, left_len, "partition lost elements");
        // The right side was written back-to-front; reverse it to restore
        // trace order (stable partition).
        dst[left_len..].reverse();
    }

    SweepOutcome {
        left_len,
        right_len: len - left_len,
        left_unique,
        right_unique,
        visit_left: left_reuse && left_unique >= 2,
        visit_right: right_reuse && right_unique >= 2,
    }
}

/// One BCAT node as a window into the per-level buffers: its subtrace is
/// `levels[level][start..start + len]` and holds `unique` distinct
/// references (counted by the parent's sweep).
#[derive(Clone, Copy, Debug)]
struct Node {
    /// Tree level (partitioning address bit).
    level: u32,
    /// Window offset within `levels[level]`.
    start: usize,
    /// Window length (occurrence count).
    len: usize,
    /// Exact distinct-reference count of the window.
    unique: usize,
}

/// Processes `node`: one fused sweep (histogram + partition), then
/// depth-first recursion into the surviving children.
fn visit(
    scratch: &mut Scratch,
    node: Node,
    max_index_bits: u32,
    addrs: &[u32],
    histograms: &mut [Vec<u64>],
) {
    let Node {
        level,
        start,
        len,
        unique,
    } = node;
    if level == max_index_bits {
        let _ = sweep::<false>(
            scratch,
            level,
            start,
            len,
            unique,
            addrs,
            &mut histograms[level as usize],
        );
        return;
    }
    let outcome = sweep::<true>(
        scratch,
        level,
        start,
        len,
        unique,
        addrs,
        &mut histograms[level as usize],
    );
    if outcome.visit_left {
        visit(
            scratch,
            Node {
                level: level + 1,
                start: 0,
                len: outcome.left_len,
                unique: outcome.left_unique,
            },
            max_index_bits,
            addrs,
            histograms,
        );
    }
    if outcome.visit_right {
        visit(
            scratch,
            Node {
                level: level + 1,
                start: outcome.left_len,
                len: outcome.right_len,
                unique: outcome.right_unique,
            },
            max_index_bits,
            addrs,
            histograms,
        );
    }
}

/// Address bits of every unique reference, indexed by `RefId`.
fn address_table(stripped: &StrippedTrace) -> Vec<u32> {
    stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect()
}

/// Folds the per-level tail histograms into [`DepthProfile`]s, recovering
/// the `d = 0` entries as "everything not otherwise accounted for".
fn finalize(histograms: Vec<Vec<u64>>, unique: u64, total: u64) -> Vec<DepthProfile> {
    let non_cold = total - unique;
    histograms
        .into_iter()
        .enumerate()
        .map(|(level, mut histogram)| {
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

/// Computes the same per-depth miss profiles as
/// [`postlude::level_profiles`](crate::postlude::level_profiles), by
/// depth-first subtrace partitioning with a reusable scratch arena.
///
/// # Panics
///
/// Panics if the trace holds `u32::MAX` or more references (sweep
/// positions are stored as `u32`).
///
/// # Examples
///
/// ```
/// use cachedse_core::dfs;
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let profiles = dfs::level_profiles(&stripped, 4);
/// assert_eq!(profiles[1].min_associativity(0), 3); // Section 2.3
/// ```
#[must_use]
pub fn level_profiles(stripped: &StrippedTrace, max_index_bits: u32) -> Vec<DepthProfile> {
    let total = stripped.total_len();
    assert!(
        total < u32::MAX as usize,
        "trace too long for u32 sweep positions"
    );
    let unique = stripped.unique_len() as u64;

    let mut histograms: Vec<Vec<u64>> = vec![Vec::new(); max_index_bits as usize + 1];
    let addrs = address_table(stripped);

    let mut scratch = Scratch::new(addrs.len());
    scratch.ensure(max_index_bits);
    {
        let root = &mut scratch.levels[0];
        root.clear();
        root.extend(stripped.id_sequence().iter().map(|id| id.raw()));
    }
    visit(
        &mut scratch,
        Node {
            level: 0,
            start: 0,
            len: total,
            unique: stripped.unique_len(),
        },
        max_index_bits,
        &addrs,
        &mut histograms,
    );

    finalize(histograms, unique, total as u64)
}

/// Multi-threaded variant of [`level_profiles`], realizing the paper's
/// §2.4 remark that "the use of sets allows for execution of the algorithm
/// on a cluster of machines": BCAT subtrees are independent, so the tree is
/// split into parked subtraces processed by a worker pool, each worker
/// accumulating private histograms that are summed at the end.
///
/// Scheduling is **size-aware**: the serial prefix keeps splitting any
/// parked subtrace longer than a threshold (so no single giant subtree
/// serializes the pool), the work list is sorted by descending length
/// (longest-processing-time-first), and workers greedily pull from an
/// atomic cursor. Each worker owns a private [`Scratch`] arena sized by its
/// first (largest) item, so the pool performs no steady-state allocation.
/// The split threshold is independent of `threads`, which keeps the output
/// byte-identical to the serial engine for every worker count (asserted by
/// the test suite).
///
/// # Panics
///
/// Panics if the trace holds `u32::MAX` or more references.
///
/// # Examples
///
/// ```
/// use std::num::NonZeroUsize;
/// use cachedse_core::dfs;
/// use cachedse_trace::{generate, strip::StrippedTrace};
///
/// let trace = generate::uniform_random(5_000, 512, 3);
/// let stripped = StrippedTrace::from_trace(&trace);
/// let serial = dfs::level_profiles(&stripped, 9);
/// let parallel = dfs::level_profiles_parallel(
///     &stripped,
///     9,
///     NonZeroUsize::new(4).expect("nonzero"),
/// );
/// assert_eq!(serial, parallel);
/// ```
#[must_use]
pub fn level_profiles_parallel(
    stripped: &StrippedTrace,
    max_index_bits: u32,
    threads: std::num::NonZeroUsize,
) -> Vec<DepthProfile> {
    let total = stripped.total_len();
    assert!(
        total < u32::MAX as usize,
        "trace too long for u32 sweep positions"
    );
    let unique = stripped.unique_len() as u64;

    let mut histograms: Vec<Vec<u64>> = vec![Vec::new(); max_index_bits as usize + 1];
    let addrs = address_table(stripped);

    // Serial gather prefix: split any subtrace longer than the threshold,
    // accumulating the split levels' histograms on the way down and parking
    // the pieces for the pool.
    let threshold = (total / TARGET_WORK_ITEMS).max(MIN_PARK_LEN);
    let mut gather_scratch = Scratch::new(addrs.len());
    let mut work: Vec<(u32, usize, Vec<u32>)> = Vec::new();
    let root: Vec<u32> = stripped.id_sequence().iter().map(|id| id.raw()).collect();
    let mut stack: Vec<(u32, usize, Vec<u32>)> = vec![(0, stripped.unique_len(), root)];
    while let Some((level, node_unique, sub)) = stack.pop() {
        if level == max_index_bits || sub.len() <= threshold {
            work.push((level, node_unique, sub));
            continue;
        }
        gather_scratch.ensure(level + 1);
        gather_scratch.load(level, &sub);
        let outcome = sweep::<true>(
            &mut gather_scratch,
            level,
            0,
            sub.len(),
            node_unique,
            &addrs,
            &mut histograms[level as usize],
        );
        let children = &gather_scratch.levels[level as usize + 1];
        if outcome.visit_left {
            stack.push((
                level + 1,
                outcome.left_unique,
                children[..outcome.left_len].to_vec(),
            ));
        }
        if outcome.visit_right {
            stack.push((
                level + 1,
                outcome.right_unique,
                children[outcome.left_len..outcome.left_len + outcome.right_len].to_vec(),
            ));
        }
    }

    if !work.is_empty() {
        // LPT: longest items first, so the greedy pull balances the pool
        // and each worker's arena is sized once, by its first item.
        work.sort_by_key(|item| std::cmp::Reverse(item.2.len()));
        let worker_count = threads.get().min(work.len());
        // Work-stealing cursor. `Relaxed` is sufficient: the cursor only
        // needs each `fetch_add` to be atomic (every index claimed exactly
        // once); the claimed items themselves are read-only shared slices,
        // and the per-worker results are published by the scope join, which
        // synchronizes-with every worker exit.
        let next = cachedse_sync::atomic::AtomicUsize::new(0);
        let locals = cachedse_sync::thread::scope(|scope| {
            let handles: Vec<_> = (0..worker_count)
                .map(|_| {
                    let next = &next;
                    let work = &work;
                    let addrs = &addrs;
                    scope.spawn(move || {
                        let mut local: Vec<Vec<u64>> =
                            vec![Vec::new(); max_index_bits as usize + 1];
                        let mut scratch = Scratch::new(addrs.len());
                        loop {
                            let i = next.fetch_add(1, cachedse_sync::atomic::Ordering::Relaxed);
                            let Some((level, node_unique, sub)) = work.get(i) else {
                                break;
                            };
                            scratch.ensure(max_index_bits);
                            scratch.load(*level, sub);
                            visit(
                                &mut scratch,
                                Node {
                                    level: *level,
                                    start: 0,
                                    len: sub.len(),
                                    unique: *node_unique,
                                },
                                max_index_bits,
                                addrs,
                                &mut local,
                            );
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect::<Vec<_>>()
        });
        for local in locals {
            for (level, hist) in local.into_iter().enumerate() {
                if histograms[level].len() < hist.len() {
                    histograms[level].resize(hist.len(), 0);
                }
                for (slot, v) in histograms[level].iter_mut().zip(hist) {
                    *slot += v;
                }
            }
        }
    }

    finalize(histograms, unique, total as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcat::Bcat;
    use crate::mrct::Mrct;
    use crate::postlude;
    use cachedse_sim::onepass::profile_depths;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn tree_table(trace: &Trace, bits: u32) -> Vec<DepthProfile> {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, bits)
    }

    fn depth_first(trace: &Trace, bits: u32) -> Vec<DepthProfile> {
        level_profiles(&StrippedTrace::from_trace(trace), bits)
    }

    #[test]
    fn paper_example_equivalence() {
        let trace = paper_running_example();
        assert_eq!(depth_first(&trace, 4), tree_table(&trace, 4));
        assert_eq!(depth_first(&trace, 4), profile_depths(&trace, 4));
    }

    #[test]
    fn workload_equivalence() {
        for trace in [
            generate::loop_pattern(0x80, 40, 25),
            generate::strided(16, 32, 48, 5),
            generate::uniform_random(1_500, 200, 23),
            generate::working_set_phases(5, 200, 30, 41),
        ] {
            let bits = trace.address_bits().min(9);
            assert_eq!(depth_first(&trace, bits), tree_table(&trace, bits));
        }
    }

    /// A trace with more uniques than [`SMALL_SET_MAX`] drives the Fenwick
    /// path at the shallow levels and the small-set path once recursion
    /// thins the nodes out — both must agree with the reference engine.
    #[test]
    fn large_unique_set_crosses_both_query_paths() {
        let trace = generate::uniform_random(20_000, 3_000, 11);
        let stripped = StrippedTrace::from_trace(&trace);
        assert!(
            stripped.unique_len() > SMALL_SET_MAX,
            "trace too small to exercise the Fenwick path"
        );
        let bits = trace.address_bits();
        assert_eq!(depth_first(&trace, bits), tree_table(&trace, bits));
    }

    #[test]
    fn empty_trace() {
        let profiles = depth_first(&Trace::new(), 3);
        assert_eq!(profiles.len(), 4);
        for p in &profiles {
            assert_eq!(p.misses_at(1), 0);
            assert_eq!(p.accesses(), 0);
        }
    }

    #[test]
    fn requesting_more_bits_than_addresses_is_safe() {
        let trace: Trace = [1u32, 2, 1, 2]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let profiles = depth_first(&trace, 10);
        assert_eq!(profiles.len(), 11);
        assert_eq!(profiles[0].misses_at(1), 2);
        for p in &profiles[1..] {
            assert_eq!(p.misses_at(1), 0);
        }
    }

    /// The depth-first engine, the tree+table engine, and one-pass
    /// simulation agree on arbitrary traces.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn three_way_equivalence() {
        let mut rng = SplitMix64::seed_from_u64(0x3417);
        for _ in 0..48 {
            let len = rng.gen_range(1usize..250);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..80))))
                .collect();
            let max_bits = rng.gen_range(0u32..8);
            let dfs = depth_first(&trace, max_bits);
            assert_eq!(&dfs, &tree_table(&trace, max_bits));
            assert_eq!(&dfs, &profile_depths(&trace, max_bits));
        }
    }

    /// The parallel engine is byte-identical to the serial one for any
    /// trace, bit budget, and worker count.
    #[test]
    fn parallel_equals_serial() {
        let mut rng = SplitMix64::seed_from_u64(0x9A8);
        for _ in 0..32 {
            let len = rng.gen_range(1usize..300);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..120))))
                .collect();
            let max_bits = rng.gen_range(0u32..9);
            let threads = rng.gen_range(1usize..6);
            let stripped = StrippedTrace::from_trace(&trace);
            let serial = level_profiles(&stripped, max_bits);
            let parallel = level_profiles_parallel(
                &stripped,
                max_bits,
                std::num::NonZeroUsize::new(threads).expect("nonzero"),
            );
            assert_eq!(serial, parallel);
        }
    }

    /// Long traces exercise the gather/park/LPT path (the threshold is
    /// only exceeded by traces longer than [`MIN_PARK_LEN`]).
    #[test]
    fn parallel_splits_long_traces() {
        let trace = generate::working_set_phases(6, 4 * MIN_PARK_LEN as u32, 96, 17);
        assert!(trace.len() > MIN_PARK_LEN);
        let stripped = StrippedTrace::from_trace(&trace);
        let bits = trace.address_bits();
        let serial = level_profiles(&stripped, bits);
        for threads in [1, 2, 3, 8] {
            let parallel = level_profiles_parallel(
                &stripped,
                bits,
                std::num::NonZeroUsize::new(threads).expect("nonzero"),
            );
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_on_workload_shapes() {
        for trace in [
            generate::loop_with_excursions(0, 128, 80, 11, 1 << 14, 9),
            generate::working_set_phases(8, 400, 64, 2),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            let bits = trace.address_bits();
            let serial = level_profiles(&stripped, bits);
            for threads in [1, 2, 8] {
                let parallel = level_profiles_parallel(
                    &stripped,
                    bits,
                    std::num::NonZeroUsize::new(threads).expect("nonzero"),
                );
                assert_eq!(serial, parallel, "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_empty_trace() {
        let profiles = level_profiles_parallel(
            &StrippedTrace::from_trace(&Trace::new()),
            4,
            std::num::NonZeroUsize::new(3).expect("nonzero"),
        );
        assert_eq!(
            profiles,
            level_profiles(&StrippedTrace::from_trace(&Trace::new()), 4)
        );
    }

    /// A scratch arena whose epoch counter is about to wrap must keep
    /// producing correct results through the wrap: the one-time stamp clear
    /// makes stale stamps from the previous generation cycle impossible.
    #[test]
    fn scratch_survives_epoch_wraparound() {
        let trace = generate::working_set_phases(3, 400, 24, 5);
        let stripped = StrippedTrace::from_trace(&trace);
        let bits = stripped.address_bits();
        let addrs = address_table(&stripped);
        let total = stripped.total_len();
        let expected = level_profiles(&stripped, bits);

        // Place the counter a handful of sweeps before the wrap, and
        // poison the stamp arrays with values a naive reset would confuse
        // with post-wrap epochs.
        let mut scratch = Scratch::new(addrs.len());
        scratch.epoch = u32::MAX - 4;
        scratch.seen_epoch.fill(2);
        scratch.last_pos.fill(7);
        scratch.ensure(bits);

        for round in 0..3 {
            let mut histograms: Vec<Vec<u64>> = vec![Vec::new(); bits as usize + 1];
            {
                let root = &mut scratch.levels[0];
                root.clear();
                root.extend(stripped.id_sequence().iter().map(|id| id.raw()));
            }
            visit(
                &mut scratch,
                Node {
                    level: 0,
                    start: 0,
                    len: total,
                    unique: stripped.unique_len(),
                },
                bits,
                &addrs,
                &mut histograms,
            );
            let got = finalize(histograms, stripped.unique_len() as u64, total as u64);
            assert_eq!(got, expected, "round {round}");
        }
        // The full trace has far more than 5 nodes, so the wrap happened.
        assert!(scratch.epoch < u32::MAX - 4, "epoch never wrapped");
        assert!(scratch.epoch >= 1);
    }

    /// The wrap boundary itself: epoch `u32::MAX` is valid, the next sweep
    /// clears and restarts at 1.
    #[test]
    fn epoch_wrap_clears_stamps() {
        let mut scratch = Scratch::new(8);
        scratch.epoch = u32::MAX - 1;
        assert_eq!(scratch.next_epoch(), u32::MAX);
        scratch.seen_epoch.fill(u32::MAX);
        assert_eq!(scratch.next_epoch(), 1);
        assert!(scratch.seen_epoch.iter().all(|&e| e == 0));
        assert_eq!(scratch.next_epoch(), 2);
    }
}
