//! Paper-style multi-budget tables (the layout of Tables 7–30).
//!
//! The paper presents its results as one table per benchmark: rows are
//! cache depths, columns the K ∈ {5, 10, 15, 20}% budgets, and each cell
//! the minimum associativity. [`BudgetGrid`] renders an [`Exploration`]
//! that way, for any budget set.

use std::fmt;

use crate::error::ExploreError;
use crate::explorer::{Exploration, MissBudget};

/// A depths × budgets table of minimum associativities.
///
/// # Examples
///
/// ```
/// use cachedse_core::{BudgetGrid, DesignSpaceExplorer};
/// use cachedse_trace::paper_running_example;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = paper_running_example();
/// let exploration = DesignSpaceExplorer::new(&trace).prepare()?;
/// let grid = BudgetGrid::paper_budgets(&exploration)?;
/// assert_eq!(grid.budget_count(), 4); // 5, 10, 15, 20 %
/// assert!(grid.to_string().contains("depth"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetGrid {
    depths: Vec<u32>,
    labels: Vec<String>,
    /// `cells[row][col]`: minimum associativity at `depths[row]` under
    /// budget `labels[col]`.
    cells: Vec<Vec<u32>>,
}

/// The paper's budget grid: K as 5, 10, 15, and 20 % of the maximum miss
/// count.
pub const PAPER_FRACTIONS: [f64; 4] = [0.05, 0.10, 0.15, 0.20];

impl BudgetGrid {
    /// Builds a grid over fractional budgets (column labels are
    /// percentages).
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidBudgetFraction`] for out-of-range fractions.
    pub fn from_fractions(
        exploration: &Exploration,
        fractions: &[f64],
    ) -> Result<Self, ExploreError> {
        let budgets: Vec<MissBudget> = fractions
            .iter()
            .map(|&f| MissBudget::FractionOfMax(f))
            .collect();
        let labels = fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect();
        Self::from_budgets(exploration, &budgets, labels)
    }

    /// Builds the paper's 5/10/15/20 % grid.
    ///
    /// # Errors
    ///
    /// Never in practice (the fractions are in range); the signature keeps
    /// the plumbing uniform.
    pub fn paper_budgets(exploration: &Exploration) -> Result<Self, ExploreError> {
        Self::from_fractions(exploration, &PAPER_FRACTIONS)
    }

    /// Builds a grid over arbitrary budgets with caller-supplied column
    /// labels.
    ///
    /// # Errors
    ///
    /// Propagates budget-resolution errors.
    ///
    /// # Panics
    ///
    /// Panics if `labels` and `budgets` differ in length.
    pub fn from_budgets(
        exploration: &Exploration,
        budgets: &[MissBudget],
        labels: Vec<String>,
    ) -> Result<Self, ExploreError> {
        assert_eq!(budgets.len(), labels.len(), "one label per budget");
        let results: Vec<_> = budgets
            .iter()
            .map(|&b| exploration.result(b))
            .collect::<Result<_, _>>()?;
        let depths: Vec<u32> = exploration
            .profiles()
            .iter()
            .map(cachedse_sim::onepass::DepthProfile::depth)
            .collect();
        let cells = depths
            .iter()
            .map(|&d| {
                results
                    .iter()
                    .map(|r| r.associativity_of(d).expect("every depth explored"))
                    .collect()
            })
            .collect();
        Ok(Self {
            depths,
            labels,
            cells,
        })
    }

    /// The depths (row headers), ascending.
    #[must_use]
    pub fn depths(&self) -> &[u32] {
        &self.depths
    }

    /// Number of budget columns.
    #[must_use]
    pub fn budget_count(&self) -> usize {
        self.labels.len()
    }

    /// The associativity at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn associativity(&self, row: usize, col: usize) -> u32 {
        self.cells[row][col]
    }

    /// Rows where at least one column needs more than a direct-mapped
    /// cache — the informative region of the table.
    #[must_use]
    pub fn interesting_rows(&self) -> usize {
        self.cells
            .iter()
            .rposition(|row| row.iter().any(|&a| a > 1))
            .map_or(0, |i| i + 1)
    }

    /// Renders the grid as CSV (`depth` column plus one column per budget),
    /// for spreadsheet or plotting pipelines.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_core::{BudgetGrid, DesignSpaceExplorer};
    /// use cachedse_trace::paper_running_example;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let exploration = DesignSpaceExplorer::new(&paper_running_example()).prepare()?;
    /// let csv = BudgetGrid::paper_budgets(&exploration)?.to_csv();
    /// assert!(csv.starts_with("depth,5%,10%,15%,20%\n"));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("depth");
        for label in &self.labels {
            let _ = write!(out, ",{label}");
        }
        out.push('\n');
        for (depth, row) in self.depths.iter().zip(&self.cells) {
            let _ = write!(out, "{depth}");
            for a in row {
                let _ = write!(out, ",{a}");
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for BudgetGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8}", "depth")?;
        for label in &self.labels {
            write!(f, " {label:>6}")?;
        }
        writeln!(f)?;
        for (depth, row) in self.depths.iter().zip(&self.cells) {
            write!(f, "{depth:>8}")?;
            for &a in row {
                write!(f, " {a:>6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::DesignSpaceExplorer;
    use cachedse_trace::paper_running_example;

    fn grid() -> BudgetGrid {
        let trace = paper_running_example();
        let exploration = DesignSpaceExplorer::new(&trace)
            .prepare()
            .expect("non-empty");
        BudgetGrid::paper_budgets(&exploration).expect("valid fractions")
    }

    #[test]
    fn shape_and_cells() {
        let g = grid();
        assert_eq!(g.depths(), &[1, 2, 4, 8, 16]);
        assert_eq!(g.budget_count(), 4);
        // Max misses of the example is 5; 5% of 5 floors to 0, so the first
        // column is the zero-miss column: depths 1..16 need 5,3,2,2,1.
        assert_eq!(g.associativity(0, 0), 5);
        assert_eq!(g.associativity(1, 0), 3);
        assert_eq!(g.associativity(4, 0), 1);
        // 20% of 5 floors to 1 miss allowed: never harder than 5%.
        for row in 0..g.depths().len() {
            assert!(g.associativity(row, 3) <= g.associativity(row, 0));
        }
    }

    #[test]
    fn interesting_rows_trims_trailing_direct_mapped() {
        let g = grid();
        // Depth 16 row is all 1s; everything above has some A > 1.
        assert_eq!(g.interesting_rows(), 4);
    }

    #[test]
    fn display_layout() {
        let text = grid().to_string();
        let mut lines = text.lines();
        let header = lines.next().expect("non-empty");
        assert!(header.contains("depth"));
        assert!(header.contains("5%") && header.contains("20%"));
        assert_eq!(text.lines().count(), 1 + 5);
    }

    #[test]
    fn custom_budgets_and_labels() {
        let trace = paper_running_example();
        let exploration = DesignSpaceExplorer::new(&trace)
            .prepare()
            .expect("non-empty");
        let g = BudgetGrid::from_budgets(
            &exploration,
            &[MissBudget::Absolute(0), MissBudget::Absolute(5)],
            vec!["K=0".into(), "K=5".into()],
        )
        .expect("valid");
        assert_eq!(g.budget_count(), 2);
        assert!(g.to_string().contains("K=0"));
        // With all 5 avoidable misses allowed, direct-mapped depth 1 works.
        assert_eq!(g.associativity(0, 1), 1);
    }

    #[test]
    fn csv_round_layout() {
        let csv = grid().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("depth,5%,10%,15%,20%"));
        assert_eq!(lines.next(), Some("1,5,5,5,5"));
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "one label per budget")]
    fn mismatched_labels_panic() {
        let trace = paper_running_example();
        let exploration = DesignSpaceExplorer::new(&trace)
            .prepare()
            .expect("non-empty");
        let _ = BudgetGrid::from_budgets(&exploration, &[MissBudget::Absolute(0)], vec![]);
    }
}
