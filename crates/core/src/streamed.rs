//! Streamed MRCT→postlude fusion: per-depth miss profiles straight off the
//! recency-array replay, with no conflict-set materialization.
//!
//! [`Mrct::build`](crate::Mrct::build) exists to feed
//! [`postlude::level_profiles`](crate::postlude::level_profiles): the CSR
//! arena stores every conflict set only so the postlude can later count
//! `|S ∩ C|` per level. But `|S ∩ C|` is order-insensitive and decomposes
//! per member — reference `x` in `r`'s conflict set shares `r`'s row at
//! level `l` **iff** the low `l` address bits agree, i.e. iff
//! `trailing_zeros(addr_x ^ addr_r) ≥ l`. So each set can be folded into
//! the per-level histograms the moment the replay produces it, and never
//! stored: one `trailing_zeros` bucketing pass over the members, then a
//! suffix-sum walk down the levels.
//!
//! Memory drops from `O(output)` (the arena holds hundreds of millions of
//! members on conflict-heavy kernels) to `O(unique refs + levels)`; the
//! Fenwick sizing pass of `Mrct::build` disappears entirely (nothing needs
//! pre-reserved ranges), and each member is touched **once** instead of
//! once per active level. The materialized pair stays intact as the
//! differential oracle and the artifact-store representation; byte-identity
//! of the two paths is enforced by `tests/postlude_differential.rs` and the
//! `cachedse-check` `profile-divergence` invariant.
//!
//! Why recency order is irrelevant: the postlude only ever computes the
//! *cardinality* `d = |S ∩ C|` of each set against each row — a sum of
//! per-member indicators — so the order in which the replay emits members
//! (and the order in which sets are produced) cannot change any histogram.
//!
//! Unlike `Mrct::build`'s emission pass, the fold keeps **no sorted index
//! of dead positions**: emission copies whole live spans with `memcpy`, so
//! it pays to know where the tombstones are, but the fold touches every
//! member individually anyway — a single well-predicted `x != ABSENT` test
//! per member (tombstones are bounded to `live/256 + 8` of the array by the
//! compaction trigger, so the branch is taken ≲0.4% of the time) replaces
//! both the binary search and the `O(dead)` ordered insert per recurrence.
//! Tombstoning becomes `O(1)` flat, which matters on adversarial traces
//! whose recurrences cluster between compactions (see `benches/streamed`).
//!
//! The same order-insensitivity that lets sets fold eagerly also lets the
//! replay itself be **chunked across cores**: see
//! [`level_profiles_parallel`].

use std::num::NonZeroUsize;

use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::{RefId, StrippedTrace};

use crate::recency::{self, Recency, ABSENT};

/// Work items handed to the parallel pool per requested thread: mild
/// oversubscription so the greedy LPT pull can rebalance when the span
/// weights mispredict the true fold cost (they are exact up to tombstone
/// count, so 4× is plenty).
const CHUNKS_PER_THREAD: usize = 4;

/// Computes the exact miss profile of every depth `1, 2, …, 2^max_index_bits`
/// in one fused replay pass — byte-identical to
/// [`Mrct::build`](crate::Mrct::build) +
/// [`postlude::level_profiles`](crate::postlude::level_profiles), without
/// materializing the BCAT or the MRCT.
///
/// # Examples
///
/// ```
/// use cachedse_core::{postlude, streamed, Bcat, Mrct};
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let fused = streamed::level_profiles(&stripped, 4);
///
/// let bcat = Bcat::from_stripped(&stripped, 4);
/// let mrct = Mrct::build(&stripped);
/// assert_eq!(fused, postlude::level_profiles(&bcat, &mrct, &stripped, 4));
/// ```
#[must_use]
pub fn level_profiles(stripped: &StrippedTrace, max_index_bits: u32) -> Vec<DepthProfile> {
    let n_unique = stripped.unique_len();
    let sequence = stripped.id_sequence();
    debug_assert!(
        n_unique < ABSENT as usize,
        "id space leaves room for the tombstone marker"
    );

    let addrs = address_table(stripped);
    let max_level = max_index_bits as usize;
    let mut hist: Vec<Vec<u64>> = vec![Vec::new(); max_level + 1];
    let mut bucket: Vec<u64> = vec![0; max_level + 1];
    let mut replay = Recency::new(n_unique, sequence.len());
    fold_chunk(
        &mut replay,
        sequence,
        &addrs,
        max_level,
        &mut hist,
        &mut bucket,
    );
    finalize(hist, stripped)
}

/// Chunked multi-core variant of [`level_profiles`], byte-identical for
/// every thread count.
///
/// Two passes. Pass one is the recency replay **alone** — `O(N)`, no
/// member folding, which is the `O(total conflict elements)` cost that
/// dominates — run serially to (a) bucket each recurrence's span weight by
/// trace position and cut the trace into [`CHUNKS_PER_THREAD`]`×threads`
/// chunks of roughly equal fold work, then (b) capture a force-compacted
/// snapshot of the recency state (`seq`/`live_pos`, `O(unique)` each) at
/// every chunk boundary. Pass two replays each chunk from its snapshot in
/// parallel workers (through the `cachedse-sync` shim, so the model
/// checker can explore the fan-out/merge — see `tests/model_streamed.rs`),
/// folding conflict sets into private per-level histograms that merge
/// additively at the end.
///
/// **Why the merge is byte-identical to serial.** A chunk's snapshot holds
/// exactly the live set and last-access order the serial replay has at
/// that position — compaction is semantically transparent, so forcing it
/// at the boundary changes nothing a fold can observe. Each recurrence
/// therefore folds against exactly the members it would fold against
/// serially, contributing the same `(level, d)` increments; and since
/// histogram cells are sums of such increments, partitioning them across
/// workers and adding the partial histograms reproduces the serial counts
/// exactly — not approximately. The final [`DepthProfile`] construction is
/// shared with the serial path.
///
/// Degenerate inputs — one thread, a trace with fewer than two references,
/// or no recurrences at all (zero fold work) — fall back to the serial
/// fold.
///
/// # Examples
///
/// ```
/// use std::num::NonZeroUsize;
/// use cachedse_core::streamed;
/// use cachedse_trace::{generate, strip::StrippedTrace};
///
/// let trace = generate::uniform_random(5_000, 512, 3);
/// let stripped = StrippedTrace::from_trace(&trace);
/// let serial = streamed::level_profiles(&stripped, 9);
/// let parallel = streamed::level_profiles_parallel(
///     &stripped,
///     9,
///     NonZeroUsize::new(4).expect("nonzero"),
/// );
/// assert_eq!(serial, parallel);
/// ```
#[must_use]
pub fn level_profiles_parallel(
    stripped: &StrippedTrace,
    max_index_bits: u32,
    threads: NonZeroUsize,
) -> Vec<DepthProfile> {
    let sequence = stripped.id_sequence();
    let n_unique = stripped.unique_len();
    if threads.get() == 1 || sequence.len() < 2 {
        return level_profiles(stripped, max_index_bits);
    }

    // Pass one (a): recency-only pre-scan → equal-work chunk boundaries.
    let (bounds, weights) =
        recency::weighted_boundaries(sequence, n_unique, threads.get() * CHUNKS_PER_THREAD);
    let chunks = bounds.len() - 1;
    if chunks < 2 {
        return level_profiles(stripped, max_index_bits);
    }

    // Pass one (b): replay again, capturing a compacted snapshot at each
    // interior boundary. Chunk 0 needs none (it starts from the empty
    // state); chunk k ≥ 1 resumes from `snapshots[k - 1]`.
    let mut snapshots = Vec::with_capacity(chunks - 1);
    {
        let mut replay = Recency::new(n_unique, sequence.len());
        let mut next_cut = 1;
        for (t, &id) in sequence.iter().enumerate() {
            if next_cut < chunks && bounds[next_cut] == t {
                snapshots.push(replay.snapshot());
                next_cut += 1;
            }
            replay.advance(id);
        }
        debug_assert_eq!(snapshots.len(), chunks - 1);
    }

    let addrs = address_table(stripped);
    let max_level = max_index_bits as usize;

    // LPT: heaviest chunks first, so the greedy pull balances the pool.
    let mut order: Vec<usize> = (0..chunks).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(weights[k]));
    let worker_count = threads.get().min(chunks);

    // Work-stealing cursor. `Relaxed` is sufficient: the cursor only needs
    // each `fetch_add` to be atomic (every chunk claimed exactly once);
    // the claimed inputs are read-only shared slices, and the per-worker
    // histograms are published by the scope join, which synchronizes-with
    // every worker exit.
    let next = cachedse_sync::atomic::AtomicUsize::new(0);
    let locals = cachedse_sync::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| {
                let next = &next;
                let order = &order;
                let bounds = &bounds;
                let snapshots = &snapshots;
                let addrs = &addrs;
                scope.spawn(move || {
                    let mut hist: Vec<Vec<u64>> = vec![Vec::new(); max_level + 1];
                    let mut bucket: Vec<u64> = vec![0; max_level + 1];
                    loop {
                        let i = next.fetch_add(1, cachedse_sync::atomic::Ordering::Relaxed);
                        let Some(&k) = order.get(i) else {
                            break;
                        };
                        let mut replay = if k == 0 {
                            Recency::new(n_unique, sequence.len())
                        } else {
                            snapshots[k - 1].restore()
                        };
                        fold_chunk(
                            &mut replay,
                            &sequence[bounds[k]..bounds[k + 1]],
                            addrs,
                            max_level,
                            &mut hist,
                            &mut bucket,
                        );
                    }
                    hist
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("streamed worker does not panic"))
            .collect::<Vec<_>>()
    });

    // Additive merge: histogram cells are sums of per-recurrence
    // increments, and the chunks partition the recurrences.
    let mut hist: Vec<Vec<u64>> = vec![Vec::new(); max_level + 1];
    for local in locals {
        for (level, partial) in local.into_iter().enumerate() {
            if hist[level].len() < partial.len() {
                hist[level].resize(partial.len(), 0);
            }
            for (slot, v) in hist[level].iter_mut().zip(partial) {
                *slot += v;
            }
        }
    }
    finalize(hist, stripped)
}

/// Raw per-reference addresses, indexable by `RefId`.
fn address_table(stripped: &StrippedTrace) -> Vec<u32> {
    stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect()
}

/// Folds one contiguous run of the trace into `hist`, advancing `replay`
/// through it. `hist[l][d]` counts the conflict sets with exactly `d`
/// same-row members at level `l` (only `d > 0` is recorded, mirroring the
/// materialized postlude); `bucket[b]` holds, for the set currently being
/// folded, the members whose shared-row depth — clamped to `max_level` —
/// is exactly `b`, and the level walk drains it back to all-zeros before
/// the next set starts. The serial path folds the whole sequence in one
/// call; the parallel path folds each chunk from its boundary snapshot.
fn fold_chunk(
    replay: &mut Recency,
    chunk: &[RefId],
    addrs: &[u32],
    max_level: usize,
    hist: &mut [Vec<u64>],
    bucket: &mut [u64],
) {
    for &id in chunk {
        let i = id.index();
        let p = replay.live_pos[i];
        if p == ABSENT {
            replay.live += 1;
        } else {
            // The conflict set is the live suffix after p. Bucket every
            // member by its clamped shared-row depth against the owner:
            // distinct unique addresses make the xor nonzero, and the
            // `min` also absorbs the (unreachable) `trailing_zeros == 32`.
            // Tombstones are skipped inline — see the module docs for why
            // no dead-position index is kept.
            let owner = addrs[i];
            let mut d: u64 = 0;
            for &x in &replay.seq[p as usize + 1..] {
                if x != ABSENT {
                    let b = ((addrs[x as usize] ^ owner).trailing_zeros() as usize).min(max_level);
                    bucket[b] += 1;
                    d += 1;
                }
            }
            // Suffix-sum walk: at level l the set contributes `d_l` =
            // #{members with shared depth ≥ l}; `d_0 = |C|` and each step
            // retires bucket[l]. Every member's clamped depth is ≤
            // max_level, so `d` hits zero no later than one past it — and
            // `d == 0` means every remaining bucket is already zero, which
            // is what lets `take` leave the array clean for the next set.
            let mut l = 0;
            while d > 0 {
                let du = d as usize;
                let h = &mut hist[l];
                if h.len() <= du {
                    h.resize(du + 1, 0);
                }
                h[du] += 1;
                d -= std::mem::take(&mut bucket[l]);
                l += 1;
            }
            replay.seq[p as usize] = ABSENT;
            replay.dead += 1;
        }
        replay.live_pos[i] = u32::try_from(replay.seq.len()).expect("recency position fits u32");
        replay.seq.push(id.raw());
        // Compact once tombstones could fragment the folded suffixes:
        // amortized O(1) per access, same threshold as `Mrct::build`.
        if replay.should_compact() {
            replay.compact();
        }
    }
}

/// Turns the raw `hist[l][d]` counts into [`DepthProfile`]s, exactly like
/// the materialized postlude: every non-first occurrence falls in exactly
/// one row per level; those not recorded during the fold had zero same-row
/// conflicts. Shared by the serial and parallel paths, so byte-identity
/// reduces to the raw counts matching.
fn finalize(hist: Vec<Vec<u64>>, stripped: &StrippedTrace) -> Vec<DepthProfile> {
    let total = stripped.total_len() as u64;
    let unique = stripped.unique_len() as u64;
    let non_cold = total - unique;
    hist.into_iter()
        .enumerate()
        .map(|(level, mut histogram)| {
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcat::Bcat;
    use crate::mrct::Mrct;
    use crate::postlude;
    use cachedse_sim::onepass::profile_depths;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn materialized(trace: &Trace, max_bits: u32) -> Vec<DepthProfile> {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, max_bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, max_bits)
    }

    fn fused(trace: &Trace, max_bits: u32) -> Vec<DepthProfile> {
        level_profiles(&StrippedTrace::from_trace(trace), max_bits)
    }

    fn fused_parallel(trace: &Trace, max_bits: u32, threads: usize) -> Vec<DepthProfile> {
        level_profiles_parallel(
            &StrippedTrace::from_trace(trace),
            max_bits,
            NonZeroUsize::new(threads).expect("nonzero"),
        )
    }

    #[test]
    fn paper_example_matches_materialized_and_simulation() {
        let trace = paper_running_example();
        let profiles = fused(&trace, 4);
        assert_eq!(profiles, materialized(&trace, 4));
        assert_eq!(profiles, profile_depths(&trace, 4));
        // Section 2.3: a depth-2 cache needs associativity 3 for zero misses.
        assert_eq!(profiles[1].min_associativity(0), 3);
    }

    #[test]
    fn matches_materialized_on_workloads() {
        for trace in [
            generate::loop_pattern(0x40, 24, 20),
            generate::strided(0, 4, 64, 6),
            generate::uniform_random(800, 128, 11),
            generate::working_set_phases(4, 150, 24, 2),
            generate::loop_with_excursions(0, 48, 30, 11, 1 << 10, 5),
        ] {
            let bits = trace.address_bits();
            assert_eq!(fused(&trace, bits), materialized(&trace, bits));
            assert_eq!(fused(&trace, bits), profile_depths(&trace, bits));
        }
    }

    #[test]
    fn parallel_matches_serial_on_workloads() {
        for trace in [
            generate::loop_pattern(0x40, 24, 20),
            generate::strided(0, 4, 64, 6),
            generate::uniform_random(800, 128, 11),
            generate::working_set_phases(4, 150, 24, 2),
            generate::loop_with_excursions(0, 48, 30, 11, 1 << 10, 5),
        ] {
            let bits = trace.address_bits();
            let serial = fused(&trace, bits);
            for threads in [1, 2, 4, 8] {
                assert_eq!(
                    serial,
                    fused_parallel(&trace, bits, threads),
                    "threads {threads}"
                );
            }
        }
    }

    #[test]
    fn levels_beyond_addresses_are_all_zero() {
        let trace: Trace = [1u32, 2, 1, 2]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let profiles = fused(&trace, 5);
        assert_eq!(profiles, materialized(&trace, 5));
        assert_eq!(profiles.len(), 6);
        for p in &profiles[2..] {
            assert_eq!(p.misses_at(1), 0, "depth {}", p.depth());
        }
    }

    /// Randomized byte-identity sweep, dense enough to exercise the
    /// tombstone compaction path (small address spaces force recurrences).
    #[test]
    fn matches_materialized_on_random_traces() {
        let mut rng = SplitMix64::seed_from_u64(0x5742_EA11);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..250);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..96))))
                .collect();
            let max_bits = rng.gen_range(0u32..8);
            assert_eq!(fused(&trace, max_bits), materialized(&trace, max_bits));
            let threads = rng.gen_range(2usize..9);
            assert_eq!(
                fused(&trace, max_bits),
                fused_parallel(&trace, max_bits, threads),
                "threads {threads}"
            );
        }
    }

    /// An adversarial many-tombstones trace: a large cold sweep, then a
    /// burst of recurrences whose owners sit just below the compaction
    /// threshold, maximizing dead entries inside the folded suffixes.
    #[test]
    fn tombstone_heavy_trace_matches_materialized() {
        let n = 4096u32;
        let mut records: Vec<Record> = (0..n).map(|a| Record::read(Address::new(a))).collect();
        for round in 0..4 {
            for a in (0..16).map(|k| (round * 16 + k) % n) {
                records.push(Record::read(Address::new(a)));
            }
        }
        let trace: Trace = records.into_iter().collect();
        let bits = 6;
        assert_eq!(fused(&trace, bits), materialized(&trace, bits));
        for threads in [2, 4, 8] {
            assert_eq!(fused(&trace, bits), fused_parallel(&trace, bits, threads));
        }
    }
}
