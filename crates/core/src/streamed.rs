//! Streamed MRCT→postlude fusion: per-depth miss profiles straight off the
//! recency-array replay, with no conflict-set materialization.
//!
//! [`Mrct::build`](crate::Mrct::build) exists to feed
//! [`postlude::level_profiles`](crate::postlude::level_profiles): the CSR
//! arena stores every conflict set only so the postlude can later count
//! `|S ∩ C|` per level. But `|S ∩ C|` is order-insensitive and decomposes
//! per member — reference `x` in `r`'s conflict set shares `r`'s row at
//! level `l` **iff** the low `l` address bits agree, i.e. iff
//! `trailing_zeros(addr_x ^ addr_r) ≥ l`. So each set can be folded into
//! the per-level histograms the moment the replay produces it, and never
//! stored: one `trailing_zeros` bucketing pass over the members, then a
//! suffix-sum walk down the levels.
//!
//! Memory drops from `O(output)` (the arena holds hundreds of millions of
//! members on conflict-heavy kernels) to `O(unique refs + levels)`; the
//! Fenwick sizing pass of `Mrct::build` disappears entirely (nothing needs
//! pre-reserved ranges), and each member is touched **once** instead of
//! once per active level. The materialized pair stays intact as the
//! differential oracle and the artifact-store representation; byte-identity
//! of the two paths is enforced by `tests/postlude_differential.rs` and the
//! `cachedse-check` `profile-divergence` invariant.
//!
//! Why recency order is irrelevant: the postlude only ever computes the
//! *cardinality* `d = |S ∩ C|` of each set against each row — a sum of
//! per-member indicators — so the order in which the replay emits members
//! (and the order in which sets are produced) cannot change any histogram.

use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::StrippedTrace;

/// Tombstone marker in the recency array (same scheme as `Mrct::build`).
const ABSENT: u32 = u32::MAX;

/// Computes the exact miss profile of every depth `1, 2, …, 2^max_index_bits`
/// in one fused replay pass — byte-identical to
/// [`Mrct::build`](crate::Mrct::build) +
/// [`postlude::level_profiles`](crate::postlude::level_profiles), without
/// materializing the BCAT or the MRCT.
///
/// # Examples
///
/// ```
/// use cachedse_core::{postlude, streamed, Bcat, Mrct};
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let fused = streamed::level_profiles(&stripped, 4);
///
/// let bcat = Bcat::from_stripped(&stripped, 4);
/// let mrct = Mrct::build(&stripped);
/// assert_eq!(fused, postlude::level_profiles(&bcat, &mrct, &stripped, 4));
/// ```
#[must_use]
pub fn level_profiles(stripped: &StrippedTrace, max_index_bits: u32) -> Vec<DepthProfile> {
    let total = stripped.total_len() as u64;
    let unique = stripped.unique_len() as u64;
    let non_cold = total - unique;
    let n_unique = stripped.unique_len();
    let sequence = stripped.id_sequence();
    debug_assert!(
        n_unique < ABSENT as usize,
        "id space leaves room for the tombstone marker"
    );

    let addrs: Vec<u32> = stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect();

    // `hist[l][d]` counts the conflict sets with exactly `d` same-row
    // members at level `l` (only `d > 0` is recorded, mirroring the
    // materialized postlude). `bucket[b]` holds, for the set currently
    // being folded, the members whose shared-row depth — clamped to
    // `max_index_bits` — is exactly `b`; the level walk drains it back to
    // all-zeros before the next set starts.
    let max_level = max_index_bits as usize;
    let mut hist: Vec<Vec<u64>> = vec![Vec::new(); max_level + 1];
    let mut bucket: Vec<u64> = vec![0; max_level + 1];

    // The replay is `Mrct::build`'s pass two verbatim — live entries in
    // last-access order, dead entries tombstoned in place, a sorted index
    // of the (few) dead positions splitting each emitted suffix into clean
    // spans — except the spans are folded instead of copied: no pass one,
    // no reserved ranges, no arena.
    let mut seq: Vec<u32> = Vec::with_capacity(n_unique.min(sequence.len()) + 1);
    let mut live_pos: Vec<u32> = vec![ABSENT; n_unique];
    let mut dead: Vec<u32> = Vec::new();
    let mut live: usize = 0;
    for &id in sequence {
        let i = id.index();
        let p = live_pos[i];
        if p == ABSENT {
            live += 1;
        } else {
            // The conflict set is the live suffix after p. Bucket every
            // member by its clamped shared-row depth against the owner:
            // distinct unique addresses make the xor nonzero, and the
            // `min` also absorbs the (unreachable) `trailing_zeros == 32`.
            let owner = addrs[i];
            let mut d: u64 = 0;
            let mut span = p as usize + 1;
            for &q in &dead[dead.partition_point(|&q| q <= p)..] {
                for &x in &seq[span..q as usize] {
                    let b = ((addrs[x as usize] ^ owner).trailing_zeros() as usize).min(max_level);
                    bucket[b] += 1;
                }
                d += (q as usize - span) as u64;
                span = q as usize + 1;
            }
            for &x in &seq[span..] {
                let b = ((addrs[x as usize] ^ owner).trailing_zeros() as usize).min(max_level);
                bucket[b] += 1;
            }
            d += (seq.len() - span) as u64;
            // Suffix-sum walk: at level l the set contributes `d_l` =
            // #{members with shared depth ≥ l}; `d_0 = |C|` and each step
            // retires bucket[l]. Every member's clamped depth is ≤
            // max_level, so `d` hits zero no later than one past it — and
            // `d == 0` means every remaining bucket is already zero, which
            // is what lets `take` leave the array clean for the next set.
            let mut l = 0;
            while d > 0 {
                let du = d as usize;
                let h = &mut hist[l];
                if h.len() <= du {
                    h.resize(du + 1, 0);
                }
                h[du] += 1;
                d -= std::mem::take(&mut bucket[l]);
                l += 1;
            }
            seq[p as usize] = ABSENT;
            dead.insert(dead.partition_point(|&q| q < p), p);
        }
        live_pos[i] = u32::try_from(seq.len()).expect("recency position fits u32");
        seq.push(id.raw());
        // Compact once tombstones could fragment the folded spans:
        // amortized O(1) per access, same threshold as `Mrct::build`.
        if dead.len() > live / 256 + 8 {
            let mut w = 0;
            for j in 0..seq.len() {
                let x = seq[j];
                if x != ABSENT {
                    live_pos[x as usize] = w as u32;
                    seq[w] = x;
                    w += 1;
                }
            }
            debug_assert_eq!(w, live, "compaction must retain exactly the live entries");
            seq.truncate(w);
            dead.clear();
        }
    }

    // Finalize exactly like the materialized postlude: every non-first
    // occurrence falls in exactly one row per level; those not recorded
    // above had zero same-row conflicts.
    hist.into_iter()
        .enumerate()
        .map(|(level, mut histogram)| {
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcat::Bcat;
    use crate::mrct::Mrct;
    use crate::postlude;
    use cachedse_sim::onepass::profile_depths;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn materialized(trace: &Trace, max_bits: u32) -> Vec<DepthProfile> {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, max_bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, max_bits)
    }

    fn fused(trace: &Trace, max_bits: u32) -> Vec<DepthProfile> {
        level_profiles(&StrippedTrace::from_trace(trace), max_bits)
    }

    #[test]
    fn paper_example_matches_materialized_and_simulation() {
        let trace = paper_running_example();
        let profiles = fused(&trace, 4);
        assert_eq!(profiles, materialized(&trace, 4));
        assert_eq!(profiles, profile_depths(&trace, 4));
        // Section 2.3: a depth-2 cache needs associativity 3 for zero misses.
        assert_eq!(profiles[1].min_associativity(0), 3);
    }

    #[test]
    fn matches_materialized_on_workloads() {
        for trace in [
            generate::loop_pattern(0x40, 24, 20),
            generate::strided(0, 4, 64, 6),
            generate::uniform_random(800, 128, 11),
            generate::working_set_phases(4, 150, 24, 2),
            generate::loop_with_excursions(0, 48, 30, 11, 1 << 10, 5),
        ] {
            let bits = trace.address_bits();
            assert_eq!(fused(&trace, bits), materialized(&trace, bits));
            assert_eq!(fused(&trace, bits), profile_depths(&trace, bits));
        }
    }

    #[test]
    fn levels_beyond_addresses_are_all_zero() {
        let trace: Trace = [1u32, 2, 1, 2]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let profiles = fused(&trace, 5);
        assert_eq!(profiles, materialized(&trace, 5));
        assert_eq!(profiles.len(), 6);
        for p in &profiles[2..] {
            assert_eq!(p.misses_at(1), 0, "depth {}", p.depth());
        }
    }

    /// Randomized byte-identity sweep, dense enough to exercise the
    /// tombstone compaction path (small address spaces force recurrences).
    #[test]
    fn matches_materialized_on_random_traces() {
        let mut rng = SplitMix64::seed_from_u64(0x5742_EA11);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..250);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..96))))
                .collect();
            let max_bits = rng.gen_range(0u32..8);
            assert_eq!(fused(&trace, max_bits), materialized(&trace, max_bits));
        }
    }
}
