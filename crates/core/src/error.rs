//! Error type of the analytical explorer.

use std::error::Error;
use std::fmt;

/// Error returned by the analytical exploration API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExploreError {
    /// The trace contains no references; there is nothing to explore.
    EmptyTrace,
    /// A fractional miss budget was negative, above 1, or not finite.
    InvalidBudgetFraction(f64),
    /// The requested maximum index width exceeds the 31 bits a `u32` depth
    /// can express.
    IndexBitsTooLarge(u32),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTrace => write!(f, "trace is empty"),
            Self::InvalidBudgetFraction(x) => {
                write!(f, "miss budget fraction {x} must be within 0.0..=1.0")
            }
            Self::IndexBitsTooLarge(bits) => {
                write!(f, "maximum index width {bits} exceeds 31 bits")
            }
        }
    }
}

impl Error for ExploreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ExploreError>();
        assert_eq!(ExploreError::EmptyTrace.to_string(), "trace is empty");
        assert_eq!(
            ExploreError::InvalidBudgetFraction(-0.5).to_string(),
            "miss budget fraction -0.5 must be within 0.0..=1.0"
        );
        assert_eq!(
            ExploreError::IndexBitsTooLarge(40).to_string(),
            "maximum index width 40 exceeds 31 bits"
        );
    }
}
