//! The tombstone-compacted recency array shared by the streamed profile
//! fold and the parallel MRCT sizing pass.
//!
//! `Mrct::build` pass two, `streamed::level_profiles`, and the chunked
//! parallel variants of both all replay the same state machine: live
//! references in last-access order, dead entries tombstoned in place
//! (`O(1)` move-to-back), the whole array rewritten once tombstones exceed
//! a small fraction of the live entries (amortized `O(1)` per access).
//! This module holds that machine once, plus the two pieces the parallel
//! paths add on top:
//!
//! * **snapshots** — a forced compaction followed by a clone of the live
//!   state (`O(unique)`), which lets a worker resume the replay from any
//!   trace position without re-running the prefix;
//! * **weighted chunk boundaries** — a cheap recency-only pre-scan that
//!   accumulates each recurrence's conflict-span length into coarse
//!   position buckets, so chunk cuts can equalize *fold work* (total
//!   conflict-set members) instead of trace positions. Conflict volume is
//!   far from uniform over a trace — working sets grow — and
//!   position-equal chunks would serialize the pool on the heavy tail.

use cachedse_trace::strip::RefId;

/// Tombstone marker for dead recency-array slots (and the "not on the
/// list" marker for `live_pos`). Any real identifier is `< N' < u32::MAX`.
pub(crate) const ABSENT: u32 = u32::MAX;

/// Coarse position-bucket count for the boundary pre-scan: fine enough
/// that a cut lands within 0.03% of the trace of its ideal position,
/// coarse enough that the bucket array stays cache-resident.
const WEIGHT_BUCKETS: usize = 4096;

/// The recency-array replay state. `seq` holds the recency list oldest to
/// newest with dead slots marked [`ABSENT`]; `live_pos[r]` is the index of
/// `r`'s live entry (or [`ABSENT`]); `live`/`dead` count the two entry
/// kinds, driving the compaction trigger.
#[derive(Clone, Debug)]
pub(crate) struct Recency {
    /// The recency array, oldest live entry first, tombstones in place.
    pub seq: Vec<u32>,
    /// Per-reference index into `seq`, [`ABSENT`] when never touched.
    pub live_pos: Vec<u32>,
    /// Number of live entries in `seq`.
    pub live: usize,
    /// Number of tombstoned entries in `seq`.
    pub dead: usize,
}

impl Recency {
    /// An empty replay state over `n_unique` references; `seq` is sized
    /// for the smaller of the unique count and the sequence length, the
    /// same pre-reservation `Mrct::build` uses.
    pub fn new(n_unique: usize, sequence_len: usize) -> Self {
        Self {
            seq: Vec::with_capacity(n_unique.min(sequence_len) + 1),
            live_pos: vec![ABSENT; n_unique],
            live: 0,
            dead: 0,
        }
    }

    /// `true` once tombstones could meaningfully fragment the live
    /// suffixes — the same `live/256 + 8` trigger as `Mrct::build`, kept
    /// identical so the serial and chunked replays stay interchangeable.
    #[inline]
    pub fn should_compact(&self) -> bool {
        self.dead > self.live / 256 + 8
    }

    /// Rewrites `seq` to live entries only and refreshes `live_pos`.
    /// Compaction is semantically transparent: it changes neither the set
    /// of live references nor their relative recency order, which is all
    /// any consumer reads — that is what makes snapshot resumption
    /// byte-identical to the serial replay regardless of where either
    /// side's triggers fire.
    pub fn compact(&mut self) {
        let mut w = 0;
        for j in 0..self.seq.len() {
            let x = self.seq[j];
            if x != ABSENT {
                self.live_pos[x as usize] = w as u32;
                self.seq[w] = x;
                w += 1;
            }
        }
        debug_assert_eq!(
            w, self.live,
            "compaction must retain exactly the live entries"
        );
        self.seq.truncate(w);
        self.dead = 0;
    }

    /// Recency-only advance (no member folding): tombstones the previous
    /// occurrence, appends the new one, and compacts **lazily** — only
    /// once tombstones outnumber the live entries. The fold's tight
    /// `live/256` trigger exists to keep the suffixes it scans dense; a
    /// replay that folds nothing would pay that trigger's `O(live)`
    /// rewrite every `~live/256` recurrences — hundreds of times the cost
    /// of the advance itself, enough to rival the fold it is supposed to
    /// be a cheap prelude to. The fold-free passes instead let the array
    /// carry up to `live` tombstones (still `O(unique)` memory) and
    /// compact amortized `O(1)`; consumers force-compact at the points
    /// where density matters (snapshots, boundary rank captures).
    ///
    /// Returns the recurrence's *span length* — the live suffix plus
    /// whatever tombstones the lazy trigger has accumulated inside it (at
    /// most the live count, so under 2× in aggregate) — or `0` on a first
    /// touch. This is the pass-one currency of the parallel fold: `O(1)`
    /// to produce, and proportional to the work pass two will spend.
    #[inline]
    pub fn advance(&mut self, id: RefId) -> u64 {
        let i = id.index();
        let p = self.live_pos[i];
        let span = if p == ABSENT {
            self.live += 1;
            0
        } else {
            self.seq[p as usize] = ABSENT;
            self.dead += 1;
            (self.seq.len() - p as usize - 1) as u64
        };
        self.live_pos[i] = u32::try_from(self.seq.len()).expect("recency position fits u32");
        self.seq.push(id.raw());
        if self.dead > self.live + 8 {
            self.compact();
        }
        span
    }

    /// Force-compacts and clones the live state: `O(unique)` space, and a
    /// worker restoring it resumes the replay exactly where this state
    /// stands.
    pub fn snapshot(&mut self) -> Snapshot {
        self.compact();
        Snapshot {
            seq: self.seq.clone(),
            live_pos: self.live_pos.clone(),
        }
    }
}

/// A compacted, resumable copy of the replay state at one trace position:
/// every entry of `seq` is live, so `live = seq.len()` and `dead = 0`.
#[derive(Clone, Debug)]
pub(crate) struct Snapshot {
    /// The compacted recency array (live entries only).
    pub seq: Vec<u32>,
    /// Per-reference index into `seq`, [`ABSENT`] when never touched.
    pub live_pos: Vec<u32>,
}

impl Snapshot {
    /// Rehydrates the snapshot into a replay state a worker can advance.
    pub fn restore(&self) -> Recency {
        Recency {
            live: self.seq.len(),
            dead: 0,
            seq: self.seq.clone(),
            live_pos: self.live_pos.clone(),
        }
    }
}

/// Splits `sequence` into at most `items` contiguous chunks of roughly
/// equal *fold work*, returning the cut positions as a partition
/// `[0, b₁, …, len]` plus each chunk's accumulated span weight.
///
/// The pre-scan replays the recency machine once (no folding, `O(N)`),
/// bucketing every recurrence's span length by trace position; cuts are
/// then placed at bucket edges where the cumulative weight crosses each
/// `k/items` quantile. Degenerate inputs (no recurrences, tiny traces)
/// collapse to a single chunk, which callers treat as "run serial".
pub(crate) fn weighted_boundaries(
    sequence: &[RefId],
    n_unique: usize,
    items: usize,
) -> (Vec<usize>, Vec<u64>) {
    let n = sequence.len();
    if n == 0 || items <= 1 {
        return (vec![0, n], vec![0]);
    }
    let nb = WEIGHT_BUCKETS.min(n);
    let mut bucket_weight = vec![0u64; nb];
    let mut replay = Recency::new(n_unique, n);
    for (t, &id) in sequence.iter().enumerate() {
        let w = replay.advance(id);
        if w > 0 {
            bucket_weight[t * nb / n] += w;
        }
    }
    let total: u64 = bucket_weight.iter().sum();
    if total == 0 {
        return (vec![0, n], vec![0]);
    }

    let mut boundaries = vec![0usize];
    let mut weights = Vec::new();
    let mut acc: u64 = 0;
    let mut chunk_acc: u64 = 0;
    let mut next_target = total.div_ceil(items as u64);
    let step = next_target;
    for (b, &w) in bucket_weight.iter().enumerate() {
        acc += w;
        chunk_acc += w;
        if acc >= next_target && b + 1 < nb {
            // Cut at the end of this bucket: position (b+1)·n/nb.
            let pos = (b + 1) * n / nb;
            if pos > *boundaries.last().expect("non-empty partition") {
                boundaries.push(pos);
                weights.push(chunk_acc);
                chunk_acc = 0;
            }
            while next_target <= acc {
                next_target = next_target.saturating_add(step);
            }
        }
    }
    boundaries.push(n);
    weights.push(chunk_acc);
    debug_assert_eq!(boundaries.len(), weights.len() + 1);
    (boundaries, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::strip::StrippedTrace;
    use cachedse_trace::{generate, Address, Record, Trace};

    fn ids(trace: &Trace) -> (Vec<RefId>, usize) {
        let stripped = StrippedTrace::from_trace(trace);
        (stripped.id_sequence().to_vec(), stripped.unique_len())
    }

    /// The recency-only advance must agree with a from-scratch set model:
    /// after any prefix, the live entries of `seq` are exactly the touched
    /// references in last-access order.
    #[test]
    fn advance_tracks_last_access_order() {
        let trace = generate::working_set_phases(3, 400, 24, 9);
        let (sequence, n_unique) = ids(&trace);
        let mut replay = Recency::new(n_unique, sequence.len());
        let mut order: Vec<u32> = Vec::new();
        for &id in &sequence {
            replay.advance(id);
            order.retain(|&x| x != id.raw());
            order.push(id.raw());
        }
        let live: Vec<u32> = replay
            .seq
            .iter()
            .copied()
            .filter(|&x| x != ABSENT)
            .collect();
        assert_eq!(live, order);
        assert_eq!(replay.live, order.len());
    }

    /// A snapshot resumes to the same state the serial replay reaches.
    #[test]
    fn snapshot_resume_matches_serial() {
        let trace = generate::uniform_random(600, 48, 3);
        let (sequence, n_unique) = ids(&trace);
        let cut = sequence.len() / 2;

        let mut serial = Recency::new(n_unique, sequence.len());
        for &id in &sequence {
            serial.advance(id);
        }
        serial.compact();

        let mut prefix = Recency::new(n_unique, sequence.len());
        for &id in &sequence[..cut] {
            prefix.advance(id);
        }
        let snap = prefix.snapshot();
        let mut resumed = snap.restore();
        for &id in &sequence[cut..] {
            resumed.advance(id);
        }
        resumed.compact();

        assert_eq!(resumed.seq, serial.seq);
        assert_eq!(resumed.live, serial.live);
    }

    /// Boundaries form a partition and the weights cover every recurrence.
    #[test]
    fn boundaries_partition_the_sequence() {
        let trace = generate::loop_with_excursions(0, 48, 30, 11, 1 << 10, 5);
        let (sequence, n_unique) = ids(&trace);
        let (bounds, weights) = weighted_boundaries(&sequence, n_unique, 8);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), sequence.len());
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds.len() - 1 <= 8);
        assert_eq!(bounds.len(), weights.len() + 1);

        let mut replay = Recency::new(n_unique, sequence.len());
        let total: u64 = sequence.iter().map(|&id| replay.advance(id)).sum();
        assert_eq!(weights.iter().sum::<u64>(), total);
    }

    /// No recurrences → one chunk, zero weight (the serial fallback).
    #[test]
    fn all_cold_trace_collapses_to_one_chunk() {
        let trace: Trace = (0..64u32).map(|a| Record::read(Address::new(a))).collect();
        let (sequence, n_unique) = ids(&trace);
        let (bounds, weights) = weighted_boundaries(&sequence, n_unique, 4);
        assert_eq!(bounds, vec![0, 64]);
        assert_eq!(weights, vec![0]);
    }
}
