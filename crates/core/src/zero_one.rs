//! Zero/one sets: per-address-bit membership sets (Table 3 of the paper).
//!
//! For every address bit `B_i`, the set `Z_i` holds the identifiers of the
//! unique references whose bit `i` is 0, and `O_i` those whose bit `i` is 1.
//! Cross-intersecting these sets is how Algorithm 1 grows the
//! [BCAT](crate::Bcat): the references mapping to cache row `b_1 b_0` of a
//! depth-4 cache are exactly `(Z_0 or O_0) ∩ (Z_1 or O_1)` as selected by the
//! row bits.

use cachedse_bitset::DenseBitSet;
use cachedse_trace::strip::StrippedTrace;

/// The array of `(Z_i, O_i)` pairs for a stripped trace.
///
/// # Examples
///
/// ```
/// use cachedse_core::ZeroOneSets;
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let zo = ZeroOneSets::from_stripped(&stripped);
///
/// // Table 3, bit B0: Z = {2,3,5}, O = {1,4} in the paper's 1-based ids,
/// // i.e. {1,2,4} and {0,3} with this crate's 0-based ids.
/// assert_eq!(zo.zero(0).ones().collect::<Vec<_>>(), vec![1, 2, 4]);
/// assert_eq!(zo.one(0).ones().collect::<Vec<_>>(), vec![0, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZeroOneSets {
    zero: Vec<DenseBitSet>,
    one: Vec<DenseBitSet>,
    unique_len: usize,
}

impl ZeroOneSets {
    /// Builds the zero/one sets of every significant address bit.
    ///
    /// Word-parallel: each `O_i` column is assembled as packed `u64` words
    /// (one bit-scatter per *set* address bit, not one insert per
    /// `(reference, bit)` pair), and each `Z_i` is its word-wise complement
    /// under the `N'`-bit validity mask — the `(Z_i, O_i)` partition is a
    /// complement by definition, so it is never computed element by
    /// element.
    #[must_use]
    pub fn from_stripped(stripped: &StrippedTrace) -> Self {
        let bits = stripped.address_bits();
        let n = stripped.unique_len();
        let words = n.div_ceil(64);
        let mut one_words: Vec<Vec<u64>> = vec![vec![0u64; words]; bits as usize];
        for (id, addr) in stripped.iter() {
            let word = id.index() / 64;
            let member = 1u64 << (id.index() % 64);
            // Scatter the address's set bits; addresses have no bits at or
            // above `address_bits`, so every index lands in a column.
            let mut rest = addr.raw();
            while rest != 0 {
                one_words[rest.trailing_zeros() as usize][word] |= member;
                rest &= rest - 1;
            }
        }
        Self::assemble(n, one_words)
    }

    /// Reassembles the sets from the packed `O_i` membership columns — the
    /// representation the persistent artifact store spills to disk. Each
    /// `Z_i` is recomputed as the word-wise complement under the `N'`-bit
    /// validity mask, exactly as [`from_stripped`](Self::from_stripped)
    /// builds it, so a reassembled value is `==` to the original. The
    /// column for bit `i` is `one_words[i]`; `bits()` becomes
    /// `one_words.len()`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation: a column
    /// with the wrong word count, or a membership bit at or above
    /// `unique_len` (loaded bytes are untrusted and must never panic
    /// downstream).
    pub fn from_one_words(unique_len: usize, one_words: Vec<Vec<u64>>) -> Result<Self, String> {
        let words = unique_len.div_ceil(64);
        let tail_mask = match unique_len % 64 {
            0 => u64::MAX,
            tail => (1u64 << tail) - 1,
        };
        for (bit, column) in one_words.iter().enumerate() {
            if column.len() != words {
                return Err(format!(
                    "O_{bit} holds {} words; {unique_len} references need {words}",
                    column.len()
                ));
            }
            if let Some(last) = column.last() {
                if last & !tail_mask != 0 {
                    return Err(format!(
                        "O_{bit} has members at or above unique length {unique_len}"
                    ));
                }
            }
        }
        Ok(Self::assemble(unique_len, one_words))
    }

    /// Builds the `(Z_i, O_i)` pairs from validated `O_i` columns.
    fn assemble(n: usize, one_words: Vec<Vec<u64>>) -> Self {
        let words = n.div_ceil(64);
        let tail_mask = match n % 64 {
            0 => u64::MAX,
            tail => (1u64 << tail) - 1,
        };
        let mut zero = Vec::with_capacity(one_words.len());
        let mut one = Vec::with_capacity(one_words.len());
        for column in one_words {
            let complement: Vec<u64> = column
                .iter()
                .enumerate()
                .map(|(w, &x)| {
                    let valid = if w + 1 == words { tail_mask } else { u64::MAX };
                    !x & valid
                })
                .collect();
            one.push(DenseBitSet::from_words(column));
            zero.push(DenseBitSet::from_words(complement));
        }
        Self {
            zero,
            one,
            unique_len: n,
        }
    }

    /// Recovers every unique reference's address from the `O_i` columns
    /// (bit `i` of `addrs[id]` is set iff `id ∈ O_i`): the bridge that lets
    /// [`Bcat::build`](crate::Bcat::build) run the radix partition without
    /// a [`StrippedTrace`] in hand. `O(|members|)` total, walking each
    /// column's set bits once.
    pub(crate) fn reconstruct_addresses(&self) -> Vec<u32> {
        let mut addrs = vec![0u32; self.unique_len];
        for (b, column) in self.one.iter().enumerate() {
            for id in column.ones() {
                addrs[id] |= 1 << b;
            }
        }
        addrs
    }

    /// Number of address bits covered.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.zero.len() as u32
    }

    /// Number of unique references the sets partition.
    #[must_use]
    pub fn unique_len(&self) -> usize {
        self.unique_len
    }

    /// The set `Z_i` of references with a 0 at bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bits()`.
    #[must_use]
    pub fn zero(&self, i: u32) -> &DenseBitSet {
        &self.zero[i as usize]
    }

    /// The set `O_i` of references with a 1 at bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bits()`.
    #[must_use]
    pub fn one(&self, i: u32) -> &DenseBitSet {
        &self.one[i as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{paper_running_example, Address, Record, Trace};

    fn random_trace(rng: &mut SplitMix64, addr_space: u32, max_len: usize) -> Trace {
        let len = rng.gen_range(1usize..max_len);
        (0..len)
            .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
            .collect()
    }

    fn ids(set: &DenseBitSet) -> Vec<usize> {
        set.ones().collect()
    }

    #[test]
    fn paper_table_3() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        let zo = ZeroOneSets::from_stripped(&stripped);
        assert_eq!(zo.bits(), 4);
        assert_eq!(zo.unique_len(), 5);
        // Paper Table 3 (ids shifted to 0-based):
        // B0: Z={2,3,5}->{1,2,4}, O={1,4}->{0,3}
        assert_eq!(ids(zo.zero(0)), vec![1, 2, 4]);
        assert_eq!(ids(zo.one(0)), vec![0, 3]);
        // B1: Z={2,5}->{1,4}, O={1,3,4}->{0,2,3}
        assert_eq!(ids(zo.zero(1)), vec![1, 4]);
        assert_eq!(ids(zo.one(1)), vec![0, 2, 3]);
        // B2: Z={1,4}->{0,3}, O={2,3,5}->{1,2,4}
        assert_eq!(ids(zo.zero(2)), vec![0, 3]);
        assert_eq!(ids(zo.one(2)), vec![1, 2, 4]);
        // B3: Z={3,4,5}->{2,3,4}, O={1,2}->{0,1}
        assert_eq!(ids(zo.zero(3)), vec![2, 3, 4]);
        assert_eq!(ids(zo.one(3)), vec![0, 1]);
    }

    #[test]
    fn empty_trace_has_one_bit() {
        let stripped = StrippedTrace::from_trace(&Trace::new());
        let zo = ZeroOneSets::from_stripped(&stripped);
        assert_eq!(zo.bits(), 1);
        assert!(zo.zero(0).is_empty());
        assert!(zo.one(0).is_empty());
    }

    /// Every bit's (Z, O) pair partitions the unique references.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn each_bit_partitions() {
        let mut rng = SplitMix64::seed_from_u64(0x2E80);
        for _ in 0..64 {
            let trace = random_trace(&mut rng, 1024, 200);
            let stripped = StrippedTrace::from_trace(&trace);
            let zo = ZeroOneSets::from_stripped(&stripped);
            let all: DenseBitSet = (0..stripped.unique_len()).collect();
            for b in 0..zo.bits() {
                assert!(zo.zero(b).is_disjoint(zo.one(b)));
                assert_eq!(&zo.zero(b).union(zo.one(b)), &all);
            }
        }
    }

    /// Membership agrees with the address bits.
    #[test]
    fn membership_matches_bits() {
        let mut rng = SplitMix64::seed_from_u64(0x0B175);
        for _ in 0..64 {
            let trace = random_trace(&mut rng, 4096, 100);
            let stripped = StrippedTrace::from_trace(&trace);
            let zo = ZeroOneSets::from_stripped(&stripped);
            for (id, addr) in stripped.iter() {
                for b in 0..zo.bits() {
                    assert_eq!(zo.one(b).contains(id.index()), addr.bit(b));
                    assert_eq!(zo.zero(b).contains(id.index()), !addr.bit(b));
                }
            }
        }
    }
}
