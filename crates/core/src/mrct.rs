//! The Memory Reference Conflict Table (Algorithm 2, Table 4 of the paper).
//!
//! For every unique reference, the MRCT stores one *conflict set* per
//! occurrence after the first: the set of distinct other references touched
//! since the previous occurrence. The first occurrence is excluded because it
//! "will always be a cold miss".
//!
//! Two builders are provided:
//!
//! * [`Mrct::build`] — the production path: a single pass over the identifier
//!   sequence maintaining an LRU recency list, as Section 2.4 of the paper
//!   recommends ("building of the MRCT … can be performed during the
//!   stripping of the trace with no additional added time complexity if a
//!   hash table is used"). Cost is proportional to the *output* size.
//! * [`Mrct::build_naive`] — the paper's Algorithm 2 verbatim: for every
//!   trace element, extend the pending conflict set of every other unique
//!   reference. `O(N · N')`; kept as executable documentation and as the
//!   oracle the fast builder is property-tested against.
//!
//! Conflict sets are stored as sorted identifier slices: the postlude only
//! ever needs `|S ∩ C|` against a bitset `S`, which is a membership-count
//! loop over the slice.

use cachedse_trace::strip::{RefId, StrippedTrace};

/// The conflict table: per unique reference, the conflict sets of its
/// non-first occurrences in trace order.
///
/// # Examples
///
/// ```
/// use cachedse_core::Mrct;
/// use cachedse_trace::{paper_running_example, strip::{RefId, StrippedTrace}};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let mrct = Mrct::build(&stripped);
///
/// // Table 4, reference 1 (our id 0): {{2,3,4}, {2,4,5}} -> 0-based
/// // {{1,2,3}, {1,3,4}}.
/// let sets = mrct.conflict_sets(RefId::new(0));
/// assert_eq!(sets[0], vec![1, 2, 3].into_boxed_slice());
/// assert_eq!(sets[1], vec![1, 3, 4].into_boxed_slice());
/// // Reference 5 (our id 4) occurs once: no conflict sets.
/// assert!(mrct.conflict_sets(RefId::new(4)).is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mrct {
    /// `conflicts[id]` = conflict sets of reference `id`, one per non-first
    /// occurrence, in trace order. Each set is sorted ascending.
    conflicts: Vec<Vec<Box<[u32]>>>,
}

impl Mrct {
    /// Builds the table in one pass with an LRU recency list.
    ///
    /// When reference `r` recurs, the references touched since its previous
    /// occurrence are exactly those *more recent than `r`* on the recency
    /// list, so the conflict set is a suffix copy — no per-element set
    /// unions.
    #[must_use]
    pub fn build(stripped: &StrippedTrace) -> Self {
        let n_unique = stripped.unique_len();
        let mut conflicts: Vec<Vec<Box<[u32]>>> = vec![Vec::new(); n_unique];
        // Recency list, most recent at the END (so cold inserts are O(1));
        // `position[id]` is the index of `id` on the list, or usize::MAX.
        let mut recency: Vec<u32> = Vec::with_capacity(n_unique);
        let mut position: Vec<usize> = vec![usize::MAX; n_unique];
        for &id in stripped.id_sequence() {
            let idx = id.index();
            let pos = position[idx];
            if pos == usize::MAX {
                position[idx] = recency.len();
                recency.push(id.raw());
            } else {
                let mut set: Vec<u32> = recency[pos + 1..].to_vec();
                set.sort_unstable();
                conflicts[idx].push(set.into_boxed_slice());
                // Move to the back, shifting the suffix left one slot.
                recency.remove(pos);
                for (i, &moved) in recency.iter().enumerate().skip(pos) {
                    position[moved as usize] = i;
                }
                position[idx] = recency.len();
                recency.push(id.raw());
            }
        }
        let table = Self { conflicts };
        #[cfg(debug_assertions)]
        table.debug_self_check(stripped);
        table
    }

    /// Well-formedness self-check run after every debug-profile build: one
    /// set per non-first occurrence, each sorted, self-free, and in range.
    /// The external `cachedse-check` crate re-verifies the same invariants
    /// (plus full window semantics) from outside.
    #[cfg(debug_assertions)]
    fn debug_self_check(&self, stripped: &StrippedTrace) {
        debug_assert_eq!(
            self.total_sets(),
            stripped.id_sequence().len() - stripped.unique_len(),
            "MRCT must hold one conflict set per non-first occurrence"
        );
        let n = self.conflicts.len() as u32;
        for (id, sets) in self.conflicts.iter().enumerate() {
            for set in sets {
                debug_assert!(
                    set.windows(2).all(|w| w[0] < w[1]),
                    "conflict set of ref {id} is not sorted and duplicate-free"
                );
                debug_assert!(
                    !set.contains(&(id as u32)),
                    "conflict set of ref {id} contains the reference itself"
                );
                debug_assert!(
                    set.iter().all(|&x| x < n),
                    "conflict set of ref {id} contains an out-of-range id"
                );
            }
        }
    }

    /// The paper's Algorithm 2, verbatim: quadratic, for testing and
    /// documentation.
    ///
    /// For each trace element `R_j`, every other unique reference's pending
    /// set `S_i` gains `R_j`'s identifier; when `R_j = U_i`, the pending set
    /// `S_i` is emitted (skipping the empty set of the first occurrence) and
    /// reset.
    #[must_use]
    pub fn build_naive(stripped: &StrippedTrace) -> Self {
        let n_unique = stripped.unique_len();
        let mut conflicts: Vec<Vec<Box<[u32]>>> = vec![Vec::new(); n_unique];
        let mut pending: Vec<Vec<u32>> = vec![Vec::new(); n_unique];
        let mut seen = vec![false; n_unique];
        for &id in stripped.id_sequence() {
            let j = id.index();
            if seen[j] {
                let mut set = std::mem::take(&mut pending[j]);
                set.sort_unstable();
                set.dedup();
                conflicts[j].push(set.into_boxed_slice());
            } else {
                seen[j] = true;
            }
            for (i, s) in pending.iter_mut().enumerate() {
                if i != j && seen[i] {
                    s.push(id.raw());
                }
            }
        }
        Self { conflicts }
    }

    /// Number of unique references covered.
    #[must_use]
    pub fn unique_len(&self) -> usize {
        self.conflicts.len()
    }

    /// The conflict sets of reference `id`, in trace order, each sorted
    /// ascending.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn conflict_sets(&self, id: RefId) -> &[Box<[u32]>] {
        &self.conflicts[id.index()]
    }

    /// Total number of conflict sets — equals `N − N'`, one per non-first
    /// occurrence.
    #[must_use]
    pub fn total_sets(&self) -> usize {
        self.conflicts.iter().map(Vec::len).sum()
    }

    /// Total stored identifiers across all conflict sets (the table's memory
    /// footprint driver).
    #[must_use]
    pub fn total_elements(&self) -> usize {
        self.conflicts
            .iter()
            .flat_map(|sets| sets.iter())
            .map(|s| s.len())
            .sum()
    }

    /// Iterates `(RefId, conflict sets)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (RefId, &[Box<[u32]>])> {
        self.conflicts
            .iter()
            .enumerate()
            .map(|(i, sets)| (RefId::new(i as u32), sets.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    /// Deterministic random traces for the randomized sweeps below
    /// (formerly proptest properties).
    fn random_traces(seed: u64, cases: usize, addr_space: u32, max_len: usize) -> Vec<Trace> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..cases)
            .map(|_| {
                let len = rng.gen_range(0usize..max_len);
                (0..len)
                    .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
                    .collect()
            })
            .collect()
    }

    fn mrct_of(trace: &Trace) -> Mrct {
        Mrct::build(&StrippedTrace::from_trace(trace))
    }

    fn as_vecs(sets: &[Box<[u32]>]) -> Vec<Vec<u32>> {
        sets.iter().map(|s| s.to_vec()).collect()
    }

    #[test]
    fn paper_table_4() {
        let mrct = mrct_of(&paper_running_example());
        // Table 4, shifted to 0-based ids:
        // 1: {{2,3,4},{2,4,5}} -> {{1,2,3},{1,3,4}}
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(0))),
            vec![vec![1, 2, 3], vec![1, 3, 4]]
        );
        // 2: {{1,3,4,5}} -> {{0,2,3,4}}
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(1))),
            vec![vec![0, 2, 3, 4]]
        );
        // 3: {{1,2,4,5}} -> {{0,1,3,4}}
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(2))),
            vec![vec![0, 1, 3, 4]]
        );
        // 4: {{1,2,5}} -> {{0,1,4}}
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(3))),
            vec![vec![0, 1, 4]]
        );
        // 5: {} (single occurrence)
        assert!(mrct.conflict_sets(RefId::new(4)).is_empty());
        assert_eq!(mrct.total_sets(), 5); // N - N' = 10 - 5
    }

    #[test]
    fn immediate_repeat_has_empty_conflict_set() {
        let trace: Trace = [7u32, 7]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let mrct = mrct_of(&trace);
        assert_eq!(as_vecs(mrct.conflict_sets(RefId::new(0))), vec![Vec::new()]);
    }

    #[test]
    fn empty_trace() {
        let mrct = mrct_of(&Trace::new());
        assert_eq!(mrct.unique_len(), 0);
        assert_eq!(mrct.total_sets(), 0);
        assert_eq!(mrct.total_elements(), 0);
    }

    #[test]
    fn duplicate_interveners_appear_once() {
        // a b b b a: the second a's conflict set is {b}, not {b,b,b}.
        let trace: Trace = [1u32, 2, 2, 2, 1]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let mrct = mrct_of(&trace);
        assert_eq!(as_vecs(mrct.conflict_sets(RefId::new(0))), vec![vec![1]]);
    }

    #[test]
    fn naive_matches_fast_on_paper_example() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        assert_eq!(Mrct::build(&stripped), Mrct::build_naive(&stripped));
    }

    #[test]
    fn naive_matches_fast_on_workload_shapes() {
        for trace in [
            generate::loop_pattern(0, 16, 10),
            generate::strided(0, 8, 32, 4),
            generate::uniform_random(500, 40, 3),
            generate::working_set_phases(3, 100, 12, 9),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            assert_eq!(Mrct::build(&stripped), Mrct::build_naive(&stripped));
        }
    }

    #[test]
    fn naive_matches_fast() {
        for trace in random_traces(0x4AC7, 64, 30, 200) {
            let stripped = StrippedTrace::from_trace(&trace);
            assert_eq!(Mrct::build(&stripped), Mrct::build_naive(&stripped));
        }
    }

    /// Structural invariants: one set per non-first occurrence, sorted,
    /// self-free, and within id range.
    #[test]
    fn structural_invariants() {
        for trace in random_traces(0x57A7, 64, 30, 200) {
            let stripped = StrippedTrace::from_trace(&trace);
            let mrct = Mrct::build(&stripped);

            assert_eq!(
                mrct.total_sets(),
                stripped.total_len() - stripped.unique_len()
            );
            for (id, sets) in mrct.iter() {
                assert_eq!(
                    sets.len() as u32,
                    stripped.occurrences(id).saturating_sub(1)
                );
                for set in sets {
                    assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
                    assert!(!set.contains(&id.raw()), "self-free");
                    assert!(set.iter().all(|&x| (x as usize) < mrct.unique_len()));
                }
            }
        }
    }

    /// Conflict sets really are "distinct refs in the reuse window":
    /// check against a direct window scan.
    #[test]
    fn window_semantics() {
        for trace in random_traces(0x317D0, 64, 20, 120) {
            let stripped = StrippedTrace::from_trace(&trace);
            let mrct = Mrct::build(&stripped);
            let ids = stripped.id_sequence();

            let mut last = std::collections::HashMap::new();
            let mut occurrence_index = vec![0usize; stripped.unique_len()];
            for (t, &id) in ids.iter().enumerate() {
                if let Some(&prev) = last.get(&id) {
                    let mut window: Vec<u32> = ids[prev + 1..t]
                        .iter()
                        .map(|r| r.raw())
                        .filter(|&x| x != id.raw())
                        .collect();
                    window.sort_unstable();
                    window.dedup();
                    let k = occurrence_index[id.index()];
                    assert_eq!(mrct.conflict_sets(id)[k].as_ref(), window.as_slice());
                    occurrence_index[id.index()] += 1;
                }
                last.insert(id, t);
            }
        }
    }
}
