//! The Memory Reference Conflict Table (Algorithm 2, Table 4 of the paper).
//!
//! For every unique reference, the MRCT stores one *conflict set* per
//! occurrence after the first: the set of distinct other references touched
//! since the previous occurrence. The first occurrence is excluded because it
//! "will always be a cold miss".
//!
//! Two builders are provided:
//!
//! * [`Mrct::build`] — the production path, two output-proportional passes
//!   (DESIGN.md §12). Pass one sizes every conflict set with the Fenwick
//!   stack-distance count the depth-first engine already uses, which fixes
//!   the whole arena layout up front; pass two replays the trace against a
//!   tombstone-compacted recency array and streams each set straight into
//!   its final arena range. Total cost is `O(N log N + output)` — never
//!   `O(N · N')`.
//! * [`Mrct::build_naive`] — the paper's Algorithm 2 verbatim: for every
//!   trace element, extend the pending conflict set of every other unique
//!   reference. `O(N · N')`; kept as executable documentation and as the
//!   oracle the fast builder is property-tested against.
//!
//! Storage is a CSR-style flat arena: one contiguous `u32` identifier
//! buffer, a set-boundary offset array, and a per-reference set-range
//! offset array. Three allocations per table regardless of how many
//! conflict sets it holds, and the postlude's `|S ∩ C|` sweeps walk one
//! contiguous buffer instead of chasing per-set `Box` pointers. Dropping a
//! table parks its buffers in a thread-local pool the next build reuses, so
//! steady-state rebuilds are allocation-free and skip the arena's
//! first-touch page faults — on conflict-heavy traces those faults cost
//! more than both construction passes combined.
//!
//! Conflict sets are stored in **recency order**: members appear by their
//! last access inside the reuse window, oldest first — exactly the order
//! the recency-list suffix produces them in. The postlude only ever needs
//! `|S ∩ C|` against a bitset `S`, which is order-insensitive, and keeping
//! the emission order avoids a per-set sort that would otherwise dominate
//! construction on conflict-heavy traces. Recency order is canonical: both
//! builders produce it, and `cachedse-check` recomputes it independently.

use std::cell::RefCell;
use std::ops::Index;

use cachedse_sim::fenwick::Fenwick;
use cachedse_trace::strip::{RefId, StrippedTrace};

use crate::recency::Recency;

/// "Not on the recency list" marker for `live_pos`, and the tombstone value
/// for dead recency-array slots. Any real identifier is `< N' < u32::MAX`.
const ABSENT: u32 = u32::MAX;

/// The three recyclable buffers of a dropped table: `(ids, set_bounds,
/// ref_sets)`, in the same order as the [`Mrct`] fields.
type PooledArena = (Vec<u32>, Vec<u32>, Vec<u32>);

thread_local! {
    /// Arena storage of the most recently dropped table on this thread,
    /// kept for the next build. Conflict-heavy traces make the identifier
    /// arena hundreds of megabytes, which lands in freshly mapped pages
    /// whose first-touch faults can cost more than writing the table
    /// itself; recycling the previous table's buffers makes steady-state
    /// rebuilds (the explorer loop, the batch service's workers, the
    /// benchmarks) allocation-free, in the same spirit as the depth-first
    /// engine's scratch arenas (DESIGN.md §10).
    static ARENA_POOL: RefCell<Option<PooledArena>> = const { RefCell::new(None) };
}

/// Takes the pooled arena buffers, or three fresh vectors.
fn pooled_buffers() -> PooledArena {
    ARENA_POOL
        .try_with(|pool| pool.borrow_mut().take())
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// Resizes a recycled buffer to exactly `len` entries, all zero-free to
/// overwrite: shrinking just truncates, growing zero-fills only the region
/// beyond the buffer's previous length.
fn recycle(buf: &mut Vec<u32>, len: usize) {
    if len <= buf.len() {
        buf.truncate(len);
    } else {
        buf.resize(len, 0);
    }
}

/// Fills `ref_sets` with the global set-slot ranges — reference `r` owns
/// one slot per non-first occurrence, so the ranges are prefix sums of
/// `occurrences − 1` — and returns the total slot count. Shared by both
/// builders.
fn ref_set_ranges(stripped: &StrippedTrace, ref_sets: &mut Vec<u32>) -> usize {
    let n_unique = stripped.unique_len();
    ref_sets.clear();
    ref_sets.reserve(n_unique + 1);
    ref_sets.push(0);
    let mut acc: u32 = 0;
    for r in 0..n_unique {
        acc += stripped.occurrences(RefId::new(r as u32)).saturating_sub(1);
        ref_sets.push(acc);
    }
    acc as usize
}

/// The conflict table: per unique reference, the conflict sets of its
/// non-first occurrences in trace order, stored in one flat CSR arena.
///
/// # Examples
///
/// ```
/// use cachedse_core::Mrct;
/// use cachedse_trace::{paper_running_example, strip::{RefId, StrippedTrace}};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let mrct = Mrct::build(&stripped);
///
/// // Table 4, reference 1 (our id 0): the sets {2,3,4} and {2,4,5} of the
/// // paper, held in recency order and 0-based.
/// let sets = mrct.conflict_sets(RefId::new(0));
/// assert_eq!(&sets[0], &[1, 2, 3]);
/// assert_eq!(&sets[1], &[4, 1, 3]);
/// // Reference 5 (our id 4) occurs once: no conflict sets.
/// assert!(mrct.conflict_sets(RefId::new(4)).is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mrct {
    /// All conflict-set members, grouped by owning reference (sets in trace
    /// order within a reference, each set in recency order).
    ids: Vec<u32>,
    /// Global set `k` occupies `ids[set_bounds[k] .. set_bounds[k + 1]]`.
    set_bounds: Vec<u32>,
    /// Reference `r` owns global sets `ref_sets[r] .. ref_sets[r + 1]`.
    ref_sets: Vec<u32>,
}

impl Drop for Mrct {
    /// Returns the table's buffers to the thread-local pool so the next
    /// build on this thread skips the arena's first-touch page faults. The
    /// pool keeps whichever arena is larger; `try_with` makes teardown-time
    /// drops (thread-local storage already destroyed) a plain deallocation.
    fn drop(&mut self) {
        let ids = std::mem::take(&mut self.ids);
        if ids.capacity() == 0 {
            return;
        }
        let set_bounds = std::mem::take(&mut self.set_bounds);
        let ref_sets = std::mem::take(&mut self.ref_sets);
        let _ = ARENA_POOL.try_with(|pool| {
            let slot = &mut *pool.borrow_mut();
            let replace = slot
                .as_ref()
                .is_none_or(|(pooled, _, _)| pooled.capacity() < ids.capacity());
            if replace {
                *slot = Some((ids, set_bounds, ref_sets));
            }
        });
    }
}

/// A borrowed view of one reference's conflict sets: contiguous ranges of
/// the table's flat arena, one per non-first occurrence, in trace order.
///
/// Indexing (`sets[k]`) and iteration yield plain `&[u32]` slices in
/// recency order (member with the oldest last access in the reuse window
/// first).
#[derive(Clone, Copy, Debug)]
pub struct ConflictSets<'a> {
    /// The table's whole identifier arena (bounds are absolute offsets).
    ids: &'a [u32],
    /// The reference's set boundaries: set `k` is `bounds[k]..bounds[k+1]`.
    /// Always at least one element.
    bounds: &'a [u32],
}

impl<'a> ConflictSets<'a> {
    /// Number of conflict sets (occurrences − 1 of the owning reference).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// `true` if the owning reference occurs at most once.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bounds.len() == 1
    }

    /// The `k`-th conflict set, or `None` past the end.
    #[must_use]
    pub fn get(&self, k: usize) -> Option<&'a [u32]> {
        if k < self.len() {
            Some(&self.ids[self.bounds[k] as usize..self.bounds[k + 1] as usize])
        } else {
            None
        }
    }

    /// Iterates the conflict sets in trace order.
    #[must_use]
    pub fn iter(&self) -> ConflictSetsIter<'a> {
        ConflictSetsIter {
            ids: self.ids,
            bounds: self.bounds.windows(2),
        }
    }
}

impl Index<usize> for ConflictSets<'_> {
    type Output = [u32];

    fn index(&self, k: usize) -> &[u32] {
        &self.ids[self.bounds[k] as usize..self.bounds[k + 1] as usize]
    }
}

impl<'a> IntoIterator for ConflictSets<'a> {
    type Item = &'a [u32];
    type IntoIter = ConflictSetsIter<'a>;

    fn into_iter(self) -> ConflictSetsIter<'a> {
        self.iter()
    }
}

/// Iterator over a reference's conflict sets (see [`ConflictSets::iter`]).
#[derive(Clone, Debug)]
pub struct ConflictSetsIter<'a> {
    ids: &'a [u32],
    bounds: std::slice::Windows<'a, u32>,
}

impl<'a> Iterator for ConflictSetsIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        self.bounds
            .next()
            .map(|w| &self.ids[w[0] as usize..w[1] as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.bounds.size_hint()
    }
}

impl ExactSizeIterator for ConflictSetsIter<'_> {}

impl Mrct {
    /// Builds the table in two output-proportional passes.
    ///
    /// **Pass one** sizes every conflict set without materializing any: a
    /// Fenwick tree keeps a `+1` at each reference's most recent trace
    /// position, so the set size of a recurrence at `t` with previous
    /// occurrence `p` is the marker count strictly inside `(p, t)` — the
    /// same stack-distance query the depth-first engine uses, `O(log N)`
    /// per access. Prefix sums over the sizes fix `set_bounds` (and the
    /// exact arena length) before a single member is written.
    ///
    /// **Pass two** replays the trace against a compacted recency array:
    /// live entries in last-access order, dead entries tombstoned in place
    /// (`O(1)` move-to-back), the whole array rewritten whenever tombstones
    /// exceed a small fraction of the live entries (amortized `O(N)`
    /// total). When a reference recurs, the live suffix after its previous
    /// position *is* its conflict set; a sorted index of the (few) dead
    /// positions splits that suffix into clean spans, each emitted with one
    /// `memcpy` directly into the final arena range pass one reserved. No
    /// per-set allocation, no staging copy, no sort, no per-element branch.
    ///
    /// Total: `O(N log N + N' + output)`, where *output* is the total
    /// member count the table stores.
    #[must_use]
    pub fn build(stripped: &StrippedTrace) -> Self {
        let n_unique = stripped.unique_len();
        let sequence = stripped.id_sequence();
        debug_assert!(
            n_unique < ABSENT as usize,
            "id space leaves room for the tombstone marker"
        );

        // Recycle the previously dropped table's storage: on the traces
        // that matter the identifier arena is the size of the output
        // (hundreds of megabytes), and faulting it in fresh costs more than
        // every pass below combined.
        let (ids, mut set_bounds, mut ref_sets) = pooled_buffers();
        let total_sets = ref_set_ranges(stripped, &mut ref_sets);

        // Pass one: per-slot set sizes via Fenwick stack-distance counting.
        // Every entry of `set_bounds` past index 0 is written by the loop
        // (one slot per recurrence), so recycled contents never leak through.
        recycle(&mut set_bounds, total_sets + 1);
        if let Some(first) = set_bounds.first_mut() {
            *first = 0;
        }
        let mut next_slot: Vec<u32> = ref_sets[..n_unique].to_vec();
        let mut fenwick = Fenwick::new(sequence.len());
        let mut last: Vec<u32> = vec![ABSENT; n_unique];
        for (t, &id) in sequence.iter().enumerate() {
            let i = id.index();
            let p = last[i];
            if p != ABSENT {
                let size = fenwick.range_sum(p as usize + 1, t);
                let slot = next_slot[i] as usize;
                next_slot[i] += 1;
                set_bounds[slot + 1] = size;
                fenwick.add(p as usize, -1);
            }
            fenwick.add(t, 1);
            last[i] = u32::try_from(t).expect("trace position fits u32");
        }

        Self::finish_from_sizes(stripped, ids, set_bounds, ref_sets)
    }

    /// Multi-core variant of [`build`](Self::build), producing an identical
    /// table for every thread count (asserted by the differential tests and
    /// the emission pass's own size/emission cross-check).
    ///
    /// Only the **sizing pass** is chunked — it is the `O(N log N)` half,
    /// uniform per position, so equal-position chunk boundaries balance it;
    /// the emission pass writes one shared arena and stays serial. A serial
    /// `O(N)` pre-scan replays the recency machine (no Fenwick) and
    /// snapshots, at each boundary `B`, every reference's occurrence count
    /// and compacted recency rank — i.e. its position in the last-access
    /// order of the prefix `[0, B)`. Each worker then re-derives its
    /// chunk's exact set sizes from local state alone:
    ///
    /// * **same-chunk recurrence** (previous occurrence `p ≥ B`): the
    ///   serial count `|markers in (p, t)|` only involves markers placed at
    ///   in-chunk positions, so a chunk-local Fenwick with the usual
    ///   move-marker discipline answers it verbatim;
    /// * **cross-chunk recurrence** (`p < B`, at most one per reference per
    ///   chunk): split the reuse window at `B`. Markers in `[B, t)` are the
    ///   distinct references touched in-chunk so far (local Fenwick prefix
    ///   sum). Markers in `(p, B)` are the references *more recent than the
    ///   owner* in the boundary snapshot — `snap_live − 1 − rank(owner)` of
    ///   them — minus those re-touched in `[B, t)`, whose markers moved
    ///   into the chunk: a second Fenwick over snapshot ranks, bumped at
    ///   each snapshot-resident reference's first in-chunk access, counts
    ///   that overlap exactly.
    ///
    /// Workers return `(slot, size)` pairs (slots from the occurrence-count
    /// snapshots) that scatter into `set_bounds` serially; prefix sums and
    /// the emission pass are shared with the serial builder, and emission's
    /// debug assertion that every set fills its reserved range exactly is a
    /// built-in differential check on the parallel sizes.
    #[must_use]
    pub fn build_parallel(stripped: &StrippedTrace, threads: std::num::NonZeroUsize) -> Self {
        let n_unique = stripped.unique_len();
        let sequence = stripped.id_sequence();
        let chunk_count = threads.get().min(sequence.len() / 2);
        if chunk_count < 2 {
            return Self::build(stripped);
        }
        debug_assert!(
            n_unique < ABSENT as usize,
            "id space leaves room for the tombstone marker"
        );

        let (ids, mut set_bounds, mut ref_sets) = pooled_buffers();
        let total_sets = ref_set_ranges(stripped, &mut ref_sets);

        // Equal-position chunk boundaries: sizing work is O(log N) per
        // position regardless of conflict volume, so positions are the
        // right balance currency here (unlike the streamed fold).
        let bounds: Vec<usize> = (0..=chunk_count)
            .map(|k| k * sequence.len() / chunk_count)
            .collect();

        // Serial pre-scan: occurrence counts plus compacted recency ranks
        // at each interior boundary, O(N + chunks · N') total.
        struct SizingSnapshot {
            /// Occurrences of each reference strictly before the boundary.
            occ: Vec<u32>,
            /// Compacted recency rank of each reference at the boundary
            /// (its position in last-access order), [`ABSENT`] if unseen.
            rank: Vec<u32>,
            /// Number of references seen before the boundary.
            live: usize,
        }
        let mut snaps: Vec<SizingSnapshot> = Vec::with_capacity(chunk_count - 1);
        {
            let mut replay = Recency::new(n_unique, sequence.len());
            let mut occ: Vec<u32> = vec![0; n_unique];
            let mut next_cut = 1;
            for (t, &id) in sequence.iter().enumerate() {
                if next_cut < chunk_count && bounds[next_cut] == t {
                    replay.compact();
                    snaps.push(SizingSnapshot {
                        occ: occ.clone(),
                        rank: replay.live_pos.clone(),
                        live: replay.live,
                    });
                    next_cut += 1;
                }
                replay.advance(id);
                occ[id.index()] += 1;
            }
            debug_assert_eq!(snaps.len(), chunk_count - 1);
        }

        recycle(&mut set_bounds, total_sets + 1);
        if let Some(first) = set_bounds.first_mut() {
            *first = 0;
        }

        // Parallel sizing: one worker per chunk (uniform work), each
        // returning its chunk's (slot, size) pairs. The shim keeps the
        // fan-out explorable by the model checker.
        let ref_sets_view = &ref_sets;
        let sized: Vec<Vec<(u32, u32)>> = cachedse_sync::thread::scope(|scope| {
            let handles: Vec<_> = (0..chunk_count)
                .map(|k| {
                    let snaps = &snaps;
                    let bounds = &bounds;
                    scope.spawn(move || {
                        let chunk = &sequence[bounds[k]..bounds[k + 1]];
                        let (mut occ, snap) = if k == 0 {
                            (vec![0u32; n_unique], None)
                        } else {
                            let s = &snaps[k - 1];
                            (s.occ.clone(), Some(s))
                        };
                        let snap_live = snap.map_or(0, |s| s.live);
                        let mut local_fenwick = Fenwick::new(chunk.len());
                        let mut snap_fenwick = Fenwick::new(snap_live);
                        let mut local_last: Vec<u32> = vec![ABSENT; n_unique];
                        let mut out: Vec<(u32, u32)> = Vec::new();
                        for (u, &id) in chunk.iter().enumerate() {
                            let i = id.index();
                            let lp = local_last[i];
                            if lp != ABSENT {
                                // Same-chunk recurrence: all markers of the
                                // reuse window live at in-chunk positions.
                                let size = local_fenwick.range_sum(lp as usize + 1, u);
                                out.push((ref_sets_view[i] + occ[i] - 1, size));
                                local_fenwick.add(lp as usize, -1);
                            } else {
                                let rank = snap.map_or(ABSENT, |s| s.rank[i]);
                                if occ[i] > 0 {
                                    // Cross-chunk recurrence: in-chunk
                                    // distinct refs, plus the snapshot refs
                                    // more recent than the owner, minus the
                                    // ones re-touched in-chunk (markers
                                    // moved past the boundary).
                                    debug_assert_ne!(rank, ABSENT);
                                    let in_chunk = local_fenwick.prefix_sum(u);
                                    let more_recent = (snap_live - 1 - rank as usize) as u32;
                                    let moved =
                                        snap_fenwick.range_sum(rank as usize + 1, snap_live);
                                    out.push((
                                        ref_sets_view[i] + occ[i] - 1,
                                        in_chunk + more_recent - moved,
                                    ));
                                }
                                // First in-chunk touch of a snapshot-resident
                                // reference: its marker is now in-chunk.
                                if rank != ABSENT {
                                    snap_fenwick.add(rank as usize, 1);
                                }
                            }
                            local_fenwick.add(u, 1);
                            local_last[i] = u32::try_from(u).expect("chunk position fits u32");
                            occ[i] += 1;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sizing worker does not panic"))
                .collect()
        });
        for part in &sized {
            for &(slot, size) in part {
                set_bounds[slot as usize + 1] = size;
            }
        }

        Self::finish_from_sizes(stripped, ids, set_bounds, ref_sets)
    }

    /// Shared tail of both builders: turns the per-slot sizes staged in
    /// `set_bounds[1..]` into arena offsets (prefix sums), then runs the
    /// serial emission pass into the reserved ranges.
    fn finish_from_sizes(
        stripped: &StrippedTrace,
        mut ids: Vec<u32>,
        mut set_bounds: Vec<u32>,
        ref_sets: Vec<u32>,
    ) -> Self {
        let n_unique = stripped.unique_len();
        let sequence = stripped.id_sequence();
        let mut acc64: u64 = 0;
        for bound in set_bounds.iter_mut().skip(1) {
            acc64 += u64::from(*bound);
            *bound = u32::try_from(acc64).expect("arena offset fits u32");
        }
        let total_elements = acc64 as usize;

        // Pass two: tombstone recency array, direct emission. `seq` holds
        // the recency list oldest-to-newest with dead slots marked ABSENT;
        // `live_pos[r]` is the index of r's live entry; `dead` is the
        // ascending index of tombstoned positions, kept tiny by compaction.
        // The span copies below tile `ids[0..total_elements]` exactly (the
        // per-slot debug assertion pins each set to its reserved range), so
        // a recycled arena needs no zeroing.
        recycle(&mut ids, total_elements);
        let mut seq: Vec<u32> = Vec::with_capacity(n_unique.min(sequence.len()) + 1);
        let mut live_pos: Vec<u32> = vec![ABSENT; n_unique];
        let mut dead: Vec<u32> = Vec::new();
        let mut live: usize = 0;
        let mut next_slot: Vec<u32> = ref_sets[..n_unique].to_vec();
        for &id in sequence {
            let i = id.index();
            let p = live_pos[i];
            if p == ABSENT {
                live += 1;
            } else {
                // The conflict set is the live suffix after p, already in
                // recency order. The dead index splits it into tombstone-free
                // spans; each span is one bulk copy into the arena range
                // pass one reserved for this slot.
                let slot = next_slot[i] as usize;
                next_slot[i] += 1;
                let mut w = set_bounds[slot] as usize;
                let mut span = p as usize + 1;
                for &q in &dead[dead.partition_point(|&q| q <= p)..] {
                    let seg = &seq[span..q as usize];
                    ids[w..w + seg.len()].copy_from_slice(seg);
                    w += seg.len();
                    span = q as usize + 1;
                }
                let seg = &seq[span..];
                ids[w..w + seg.len()].copy_from_slice(seg);
                w += seg.len();
                debug_assert_eq!(
                    w,
                    set_bounds[slot + 1] as usize,
                    "pass-one set size and pass-two emission disagree"
                );
                seq[p as usize] = ABSENT;
                dead.insert(dead.partition_point(|&q| q < p), p);
            }
            live_pos[i] = u32::try_from(seq.len()).expect("recency position fits u32");
            seq.push(id.raw());
            // Compact once tombstones could fragment the bulk copies:
            // amortized O(1) per access, and every emission stays within a
            // few spans of the set it writes.
            if dead.len() > live / 256 + 8 {
                let mut w = 0;
                for j in 0..seq.len() {
                    let x = seq[j];
                    if x != ABSENT {
                        live_pos[x as usize] = w as u32;
                        seq[w] = x;
                        w += 1;
                    }
                }
                debug_assert_eq!(w, live, "compaction must retain exactly the live entries");
                seq.truncate(w);
                dead.clear();
            }
        }

        let table = Self {
            ids,
            set_bounds,
            ref_sets,
        };
        #[cfg(debug_assertions)]
        table.debug_self_check(stripped);
        table
    }

    /// Well-formedness self-check run after every debug-profile build (both
    /// builders): one set per non-first occurrence, each duplicate-free,
    /// self-free, and in range. The external `cachedse-check` crate
    /// re-verifies the same invariants (plus full window semantics) from
    /// outside.
    #[cfg(debug_assertions)]
    fn debug_self_check(&self, stripped: &StrippedTrace) {
        debug_assert_eq!(
            self.total_sets(),
            stripped.id_sequence().len() - stripped.unique_len(),
            "MRCT must hold one conflict set per non-first occurrence"
        );
        let n = self.unique_len() as u32;
        // Epoch-stamped membership: stamp[x] == current set number marks x
        // as already seen in this set. Initialized past any epoch in use.
        let mut stamp: Vec<u32> = vec![u32::MAX; self.unique_len()];
        let mut epoch: u32 = 0;
        for (id, sets) in self.iter() {
            let id = id.raw();
            for set in sets {
                for &x in set {
                    debug_assert!(
                        x != id,
                        "conflict set of ref {id} contains the reference itself"
                    );
                    debug_assert!(
                        x < n,
                        "conflict set of ref {id} contains an out-of-range id"
                    );
                    debug_assert!(
                        stamp[x as usize] != epoch,
                        "conflict set of ref {id} contains {x} twice"
                    );
                    stamp[x as usize] = epoch;
                }
                epoch += 1;
            }
        }
    }

    /// The paper's Algorithm 2, verbatim: quadratic, for testing and
    /// documentation.
    ///
    /// For each trace element `R_j`, every other unique reference's pending
    /// set `S_i` gains `R_j`'s identifier; when `R_j = U_i`, the pending set
    /// `S_i` is emitted (skipping the empty set of the first occurrence) and
    /// reset. Duplicates collapse onto their *last* occurrence, which is
    /// recency order — the canonical member order both builders share. The
    /// result is packed into the same CSR arena layout the fast builder
    /// produces, so table equality is plain `==`.
    #[must_use]
    pub fn build_naive(stripped: &StrippedTrace) -> Self {
        let n_unique = stripped.unique_len();
        let mut conflicts: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n_unique];
        let mut pending: Vec<Vec<u32>> = vec![Vec::new(); n_unique];
        let mut seen = vec![false; n_unique];
        let mut in_set = vec![false; n_unique];
        for &id in stripped.id_sequence() {
            let j = id.index();
            if seen[j] {
                let raw = std::mem::take(&mut pending[j]);
                // Keep each member's last occurrence, preserving order: a
                // reversed scan takes first-seen, reversing back restores
                // oldest-last-access-first — recency order.
                let mut set: Vec<u32> = Vec::new();
                for &x in raw.iter().rev() {
                    if !in_set[x as usize] {
                        in_set[x as usize] = true;
                        set.push(x);
                    }
                }
                for &x in &set {
                    in_set[x as usize] = false;
                }
                set.reverse();
                conflicts[j].push(set);
            } else {
                seen[j] = true;
            }
            for (i, s) in pending.iter_mut().enumerate() {
                if i != j && seen[i] {
                    s.push(id.raw());
                }
            }
        }
        let table = Self::from_nested(&conflicts);
        #[cfg(debug_assertions)]
        table.debug_self_check(stripped);
        table
    }

    /// Packs per-reference nested conflict sets into the CSR arena layout.
    fn from_nested(conflicts: &[Vec<Vec<u32>>]) -> Self {
        let total_sets: usize = conflicts.iter().map(Vec::len).sum();
        let total_ids: usize = conflicts
            .iter()
            .flat_map(|sets| sets.iter())
            .map(Vec::len)
            .sum();
        let mut ref_sets: Vec<u32> = Vec::with_capacity(conflicts.len() + 1);
        let mut set_bounds: Vec<u32> = Vec::with_capacity(total_sets + 1);
        let mut ids: Vec<u32> = Vec::with_capacity(total_ids);
        ref_sets.push(0);
        set_bounds.push(0);
        for sets in conflicts {
            for set in sets {
                ids.extend_from_slice(set);
                set_bounds.push(u32::try_from(ids.len()).expect("arena offset fits u32"));
            }
            ref_sets.push((set_bounds.len() - 1) as u32);
        }
        Self {
            ids,
            set_bounds,
            ref_sets,
        }
    }

    /// The table's flat CSR arenas: `(ids, set_bounds, ref_sets)` — all
    /// conflict-set members, the per-set bounds into them, and the per
    /// reference set ranges. This is the table's entire state, in the
    /// order [`from_flat`](Self::from_flat) consumes; what the persistent
    /// artifact store spills to disk.
    #[must_use]
    pub fn flat_parts(&self) -> (&[u32], &[u32], &[u32]) {
        (&self.ids, &self.set_bounds, &self.ref_sets)
    }

    /// Reassembles a table from the flat arenas of
    /// [`flat_parts`](Self::flat_parts). A reassembled table is `==` to
    /// the original.
    ///
    /// Only *structural* CSR soundness is re-established (both bound
    /// arrays monotone, anchored at 0, ending at the owned array's length;
    /// members in range) so no accessor can panic on loaded (untrusted)
    /// bytes. Semantic soundness — that the sets are the paper's reuse
    /// windows — is `cachedse-check`'s job; the artifact store runs
    /// `check_artifacts` on every load.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation.
    pub fn from_flat(
        ids: Vec<u32>,
        set_bounds: Vec<u32>,
        ref_sets: Vec<u32>,
    ) -> Result<Self, String> {
        for (name, bounds, end) in [
            ("set_bounds", &set_bounds, ids.len()),
            ("ref_sets", &ref_sets, set_bounds.len().saturating_sub(1)),
        ] {
            if bounds.first() != Some(&0) {
                return Err(format!("{name} must start at 0"));
            }
            if bounds.last().map(|&b| b as usize) != Some(end) {
                return Err(format!("{name} must end at {end}, got {:?}", bounds.last()));
            }
            if bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{name} is not monotone"));
            }
        }
        let unique_len = ref_sets.len() - 1;
        if ids.iter().any(|&id| id as usize >= unique_len) {
            return Err(format!(
                "a conflict set names a reference beyond {unique_len}"
            ));
        }
        Ok(Self {
            ids,
            set_bounds,
            ref_sets,
        })
    }

    /// Number of unique references covered.
    #[must_use]
    pub fn unique_len(&self) -> usize {
        self.ref_sets.len() - 1
    }

    /// The conflict sets of reference `id`, in trace order, each in recency
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn conflict_sets(&self, id: RefId) -> ConflictSets<'_> {
        let lo = self.ref_sets[id.index()] as usize;
        let hi = self.ref_sets[id.index() + 1] as usize;
        ConflictSets {
            ids: &self.ids,
            bounds: &self.set_bounds[lo..=hi],
        }
    }

    /// Total number of conflict sets — equals `N − N'`, one per non-first
    /// occurrence.
    #[must_use]
    pub fn total_sets(&self) -> usize {
        self.set_bounds.len() - 1
    }

    /// Total stored identifiers across all conflict sets (the table's memory
    /// footprint driver).
    #[must_use]
    pub fn total_elements(&self) -> usize {
        self.ids.len()
    }

    /// Iterates `(RefId, conflict sets)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (RefId, ConflictSets<'_>)> {
        (0..self.unique_len()).map(|i| {
            let id = RefId::new(i as u32);
            (id, self.conflict_sets(id))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    /// Deterministic random traces for the randomized sweeps below
    /// (formerly proptest properties).
    fn random_traces(seed: u64, cases: usize, addr_space: u32, max_len: usize) -> Vec<Trace> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..cases)
            .map(|_| {
                let len = rng.gen_range(0usize..max_len);
                (0..len)
                    .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
                    .collect()
            })
            .collect()
    }

    fn mrct_of(trace: &Trace) -> Mrct {
        Mrct::build(&StrippedTrace::from_trace(trace))
    }

    fn as_vecs(sets: ConflictSets<'_>) -> Vec<Vec<u32>> {
        sets.iter().map(<[u32]>::to_vec).collect()
    }

    #[test]
    fn paper_table_4() {
        let mrct = mrct_of(&paper_running_example());
        // Table 4 shifted to 0-based ids, members in recency order (by last
        // access inside the reuse window, oldest first).
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(0))),
            vec![vec![1, 2, 3], vec![4, 1, 3]]
        );
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(1))),
            vec![vec![2, 3, 0, 4]]
        );
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(2))),
            vec![vec![4, 1, 3, 0]]
        );
        assert_eq!(
            as_vecs(mrct.conflict_sets(RefId::new(3))),
            vec![vec![0, 4, 1]]
        );
        // 5 (our id 4): single occurrence, no sets.
        assert!(mrct.conflict_sets(RefId::new(4)).is_empty());
        assert_eq!(mrct.total_sets(), 5); // N - N' = 10 - 5
    }

    #[test]
    fn immediate_repeat_has_empty_conflict_set() {
        let trace: Trace = [7u32, 7]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let mrct = mrct_of(&trace);
        assert_eq!(as_vecs(mrct.conflict_sets(RefId::new(0))), vec![Vec::new()]);
    }

    #[test]
    fn empty_trace() {
        let mrct = mrct_of(&Trace::new());
        assert_eq!(mrct.unique_len(), 0);
        assert_eq!(mrct.total_sets(), 0);
        assert_eq!(mrct.total_elements(), 0);
    }

    #[test]
    fn duplicate_interveners_appear_once() {
        // a b b b a: the second a's conflict set is {b}, not {b,b,b}.
        let trace: Trace = [1u32, 2, 2, 2, 1]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let mrct = mrct_of(&trace);
        assert_eq!(as_vecs(mrct.conflict_sets(RefId::new(0))), vec![vec![1]]);
    }

    #[test]
    fn sets_are_in_recency_order() {
        // c b a c: c's reuse window touches b then a, so the set is [b, a]
        // ([1, 2] as ids) — last-access order, not ascending-id order.
        let trace: Trace = [30u32, 20, 10, 30]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        let mrct = mrct_of(&trace);
        assert_eq!(as_vecs(mrct.conflict_sets(RefId::new(0))), vec![vec![1, 2]]);
    }

    #[test]
    fn view_accessors_agree() {
        let mrct = mrct_of(&paper_running_example());
        let sets = mrct.conflict_sets(RefId::new(0));
        assert_eq!(sets.len(), 2);
        assert!(!sets.is_empty());
        assert_eq!(sets.get(0), Some(&[1u32, 2, 3][..]));
        assert_eq!(sets.get(2), None);
        assert_eq!(&sets[1], &[4, 1, 3]);
        let collected: Vec<&[u32]> = sets.into_iter().collect();
        assert_eq!(collected, vec![&[1u32, 2, 3][..], &[4, 1, 3][..]]);
        assert_eq!(sets.iter().len(), 2);
    }

    #[test]
    fn naive_matches_fast_on_paper_example() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        assert_eq!(Mrct::build(&stripped), Mrct::build_naive(&stripped));
    }

    #[test]
    fn naive_matches_fast_on_workload_shapes() {
        for trace in [
            generate::loop_pattern(0, 16, 10),
            generate::strided(0, 8, 32, 4),
            generate::uniform_random(500, 40, 3),
            generate::working_set_phases(3, 100, 12, 9),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            assert_eq!(Mrct::build(&stripped), Mrct::build_naive(&stripped));
        }
    }

    #[test]
    fn naive_matches_fast() {
        for trace in random_traces(0x4AC7, 64, 30, 200) {
            let stripped = StrippedTrace::from_trace(&trace);
            assert_eq!(Mrct::build(&stripped), Mrct::build_naive(&stripped));
        }
    }

    #[test]
    fn parallel_matches_serial_on_workload_shapes() {
        for trace in [
            generate::loop_pattern(0, 16, 10),
            generate::strided(0, 8, 32, 4),
            generate::uniform_random(500, 40, 3),
            generate::working_set_phases(3, 100, 12, 9),
            generate::loop_with_excursions(0, 48, 30, 11, 1 << 10, 5),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            let serial = Mrct::build(&stripped);
            for threads in [1usize, 2, 3, 4, 8] {
                let threads = std::num::NonZeroUsize::new(threads).expect("nonzero");
                assert_eq!(
                    serial,
                    Mrct::build_parallel(&stripped, threads),
                    "threads {threads}"
                );
            }
        }
    }

    /// Randomized parallel/serial equality, with thread counts cycling past
    /// the chunkable maximum (tiny traces must fall back cleanly).
    #[test]
    fn parallel_matches_serial_on_random_traces() {
        for (case, trace) in random_traces(0x9E37, 64, 30, 200).into_iter().enumerate() {
            let stripped = StrippedTrace::from_trace(&trace);
            let threads = std::num::NonZeroUsize::new(2 + case % 7).expect("nonzero");
            assert_eq!(
                Mrct::build(&stripped),
                Mrct::build_parallel(&stripped, threads),
                "case {case}, threads {threads}"
            );
        }
    }

    /// Structural invariants: one set per non-first occurrence, distinct,
    /// self-free, and within id range.
    #[test]
    fn structural_invariants() {
        for trace in random_traces(0x57A7, 64, 30, 200) {
            let stripped = StrippedTrace::from_trace(&trace);
            let mrct = Mrct::build(&stripped);

            assert_eq!(
                mrct.total_sets(),
                stripped.total_len() - stripped.unique_len()
            );
            assert_eq!(
                mrct.total_elements(),
                mrct.iter()
                    .flat_map(|(_, sets)| sets.iter().map(<[u32]>::len))
                    .sum::<usize>()
            );
            for (id, sets) in mrct.iter() {
                assert_eq!(
                    sets.len() as u32,
                    stripped.occurrences(id).saturating_sub(1)
                );
                for set in sets {
                    let mut sorted = set.to_vec();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), set.len(), "members are distinct");
                    assert!(!set.contains(&id.raw()), "self-free");
                    assert!(set.iter().all(|&x| (x as usize) < mrct.unique_len()));
                }
            }
        }
    }

    /// Conflict sets really are "distinct refs in the reuse window", in
    /// recency order: check against a direct window scan that keeps each
    /// member's last occurrence.
    #[test]
    fn window_semantics() {
        for trace in random_traces(0x317D0, 64, 20, 120) {
            let stripped = StrippedTrace::from_trace(&trace);
            let mrct = Mrct::build(&stripped);
            let ids = stripped.id_sequence();

            let mut last = std::collections::HashMap::new();
            let mut occurrence_index = vec![0usize; stripped.unique_len()];
            for (t, &id) in ids.iter().enumerate() {
                if let Some(&prev) = last.get(&id) {
                    let mut window: Vec<u32> = Vec::new();
                    for r in ids[prev + 1..t].iter().rev() {
                        let x = r.raw();
                        if x != id.raw() && !window.contains(&x) {
                            window.push(x);
                        }
                    }
                    window.reverse();
                    let k = occurrence_index[id.index()];
                    assert_eq!(&mrct.conflict_sets(id)[k], window.as_slice());
                    occurrence_index[id.index()] += 1;
                }
                last.insert(id, t);
            }
        }
    }
}
