//! Analytical design space exploration of caches for embedded systems.
//!
//! This crate is a complete implementation of the method of **Arijit Ghosh
//! and Tony Givargis, "Analytical Design Space Exploration of Caches for
//! Embedded Systems"** (DATE 2003; UC Irvine CECS TR 02-27): given a memory
//! reference trace and a designer constraint `K` — the number of tolerable
//! cache misses beyond the unavoidable cold misses — *directly compute*, for
//! every cache depth `D`, the minimum LRU associativity `A` such that a
//! `D`-row, `A`-way cache misses at most `K` times. No per-configuration
//! simulation loop (the traditional flow of the paper's Figure 1a) is needed.
//!
//! # The method
//!
//! The **prelude phase** processes the trace once:
//!
//! * [`strip`](cachedse_trace::strip) the trace of `N` references into `N'`
//!   unique references (Tables 1–2 of the paper);
//! * build the per-address-bit zero/one sets ([`ZeroOneSets`], Table 3);
//! * build the **Binary Cache Allocation Tree** ([`Bcat`], Algorithm 1,
//!   Figure 3): level `l` of the tree partitions the unique references onto
//!   the `2^l` rows of a depth-`2^l` cache;
//! * build the **Memory Reference Conflict Table** ([`Mrct`], Algorithm 2,
//!   Table 4): for every non-first occurrence of a reference, the set of
//!   distinct other references touched since its previous occurrence.
//!
//! The **postlude phase** ([`postlude`], Algorithm 3) combines the two: an
//! occurrence of `r` with conflict set `C`, mapped to a row whose residents
//! are `S`, misses in an `A`-way LRU cache **iff** `|S ∩ C| ≥ A`. Summing
//! over a BCAT level gives the exact miss count of every `(D, A)` pair, and
//! thus the minimum `A` meeting the budget.
//!
//! Section 2.4 of the paper sketches a combined variant that never
//! materializes the tree or the table; [`dfs`] implements it with a
//! depth-first subtrace partition and Fenwick-tree distance counting, in
//! `O(N log N)` time per level and linear space. The default engine goes
//! further: [`streamed`] fuses the MRCT replay with the postlude, folding
//! every conflict set into the per-level histograms the moment it is
//! produced — the profiles of all levels in one pass, `O(N')` memory, no
//! materialized table at all.
//!
//! # Exactness
//!
//! `|S ∩ C|` is precisely the LRU stack distance of the occurrence *within
//! its cache row*, so the analytical counts are not estimates: they equal
//! what the trace-driven simulator of `cachedse-sim` observes, access for
//! access. The [`verify`] module (and the workspace test suite) checks this
//! on every exploration.
//!
//! # Quickstart
//!
//! ```
//! use cachedse_core::{DesignSpaceExplorer, MissBudget};
//! use cachedse_trace::generate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A looping workload with excursions, 20k references.
//! let trace = generate::loop_with_excursions(0, 96, 200, 13, 1 << 12, 7);
//!
//! // Allow at most 5% of the worst-case avoidable misses.
//! let result = DesignSpaceExplorer::new(&trace)
//!     .explore(MissBudget::FractionOfMax(0.05))?;
//!
//! for point in result.pairs() {
//!     assert!(result.misses_of(point.depth).unwrap() <= result.budget());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod recency;

pub mod bcat;
pub mod dfs;
pub mod explorer;
pub mod mrct;
pub mod postlude;
pub mod report;
pub mod streamed;
pub mod verify;
pub mod zero_one;

pub use bcat::Bcat;
pub use error::ExploreError;
pub use explorer::{
    explore_shared, prepare_stripped, DesignSpaceExplorer, Engine, Exploration, ExplorationResult,
    MissBudget, SharedExploration,
};
pub use mrct::{ConflictSets, Mrct};
pub use report::BudgetGrid;
pub use zero_one::ZeroOneSets;

// The `(depth, associativity)` output type is shared with the simulator's
// exhaustive baseline so results compare with `==`.
pub use cachedse_sim::DesignPoint;
