//! Energy-aware selection over analytically explored design spaces.
//!
//! The paper's output is, per depth, the minimum associativity meeting a
//! miss budget. A designer still has to pick *one* of those `(D, A)` pairs —
//! and the right tiebreaker for embedded parts is energy. Everything needed
//! is already in the analytical profiles (accesses, cold misses, exact
//! misses at every `(D, A)`), so selection costs no simulation.
//!
//! [`line_size_sweep`] extends the same idea along the paper's future-work
//! axis of line size: explore the trace coarsened to each candidate line
//! size, evaluate energy (longer lines pay more per miss and per access but
//! miss less), and return the per-line-size optima.

use cachedse_core::{DesignSpaceExplorer, Exploration, ExploreError, MissBudget};
use cachedse_sim::DesignPoint;
use cachedse_trace::Trace;

use crate::geometry::CacheGeometry;
use crate::models::{CostModel, CostReport};

/// A design point with its evaluated cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedPoint {
    /// The `(depth, associativity)` pair.
    pub point: DesignPoint,
    /// The line size (`log2` words) the trace was analyzed at.
    pub line_bits: u32,
    /// Exact avoidable misses at this configuration.
    pub avoidable_misses: u64,
    /// The evaluated cost.
    pub report: CostReport,
}

/// Evaluates every budget-satisfying pair of an exploration and returns them
/// sorted by dynamic energy (ties toward smaller area).
///
/// # Errors
///
/// Propagates [`ExploreError`] from budget resolution.
pub fn rank_within_budget(
    exploration: &Exploration,
    budget: MissBudget,
    line_bits: u32,
    model: &CostModel,
) -> Result<Vec<RankedPoint>, ExploreError> {
    let result = exploration.result(budget)?;
    let mut ranked: Vec<RankedPoint> = exploration
        .profiles()
        .iter()
        .zip(result.pairs())
        .map(|(profile, &point)| {
            let avoidable = profile.misses_at(point.associativity);
            let misses = avoidable + profile.cold();
            let geometry = CacheGeometry::from_design_point(point, line_bits);
            RankedPoint {
                point,
                line_bits,
                avoidable_misses: avoidable,
                report: model.evaluate(&geometry, profile.accesses(), misses),
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.report
            .dynamic_nj
            .total_cmp(&b.report.dynamic_nj)
            .then(a.report.area_um2.total_cmp(&b.report.area_um2))
    });
    Ok(ranked)
}

/// The lowest-energy configuration meeting the budget.
///
/// # Errors
///
/// Propagates [`ExploreError`] from budget resolution.
pub fn energy_optimal(
    exploration: &Exploration,
    budget: MissBudget,
    line_bits: u32,
    model: &CostModel,
) -> Result<RankedPoint, ExploreError> {
    Ok(rank_within_budget(exploration, budget, line_bits, model)?
        .into_iter()
        .next()
        .expect("explorations cover at least depth 1"))
}

/// The global energy optimum with **no** miss constraint: scans every depth
/// and every associativity up to the zero-miss requirement (beyond it,
/// misses stay zero while energy only grows).
#[must_use]
pub fn energy_optimal_unconstrained(
    exploration: &Exploration,
    line_bits: u32,
    model: &CostModel,
) -> RankedPoint {
    let mut best: Option<RankedPoint> = None;
    for profile in exploration.profiles() {
        let a_zero = profile.min_associativity(0);
        for assoc in 1..=a_zero {
            let point = DesignPoint {
                depth: profile.depth(),
                associativity: assoc,
            };
            let avoidable = profile.misses_at(assoc);
            let geometry = CacheGeometry::from_design_point(point, line_bits);
            let report = model.evaluate(&geometry, profile.accesses(), avoidable + profile.cold());
            let candidate = RankedPoint {
                point,
                line_bits,
                avoidable_misses: avoidable,
                report,
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.report.dynamic_nj < b.report.dynamic_nj,
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best.expect("explorations cover at least depth 1")
}

/// Explores the trace at every line size `2^0 .. 2^max_line_bits` words and
/// returns the unconstrained energy optimum per line size, smallest line
/// first — the paper's future-work line-size axis made comparable through
/// energy.
///
/// # Errors
///
/// [`ExploreError::EmptyTrace`] for an empty trace.
pub fn line_size_sweep(
    trace: &Trace,
    max_line_bits: u32,
    model: &CostModel,
) -> Result<Vec<RankedPoint>, ExploreError> {
    (0..=max_line_bits)
        .map(|line_bits| {
            let coarse = trace.block_aligned(line_bits);
            let exploration = DesignSpaceExplorer::new(&coarse).prepare()?;
            Ok(energy_optimal_unconstrained(&exploration, line_bits, model))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_sim::{simulate, CacheConfig};
    use cachedse_trace::generate;

    fn exploration_of(trace: &Trace) -> Exploration {
        DesignSpaceExplorer::new(trace)
            .prepare()
            .expect("non-empty")
    }

    #[test]
    fn ranking_is_sorted_and_within_budget() {
        let trace = generate::loop_with_excursions(0, 64, 50, 9, 1 << 10, 3);
        let exploration = exploration_of(&trace);
        let model = CostModel::default_180nm();
        let budget = MissBudget::FractionOfMax(0.10);
        let ranked = rank_within_budget(&exploration, budget, 0, &model).unwrap();
        assert_eq!(ranked.len(), exploration.profiles().len());
        let resolved = exploration.resolve_budget(budget).unwrap();
        for pair in ranked.windows(2) {
            assert!(pair[0].report.dynamic_nj <= pair[1].report.dynamic_nj);
        }
        for p in &ranked {
            assert!(p.avoidable_misses <= resolved);
        }
        assert_eq!(
            energy_optimal(&exploration, budget, 0, &model).unwrap(),
            ranked[0]
        );
    }

    #[test]
    fn ranked_misses_match_simulation() {
        let trace = generate::working_set_phases(4, 300, 48, 5);
        let exploration = exploration_of(&trace);
        let model = CostModel::default_180nm();
        let ranked = rank_within_budget(&exploration, MissBudget::Absolute(20), 0, &model).unwrap();
        for p in ranked {
            let config = CacheConfig::lru(p.point.depth, p.point.associativity).unwrap();
            let stats = simulate(&trace, &config);
            assert_eq!(p.avoidable_misses, stats.avoidable_misses());
            assert_eq!(p.report.misses, stats.misses);
            assert_eq!(p.report.accesses, stats.accesses);
        }
    }

    #[test]
    fn unconstrained_beats_or_ties_every_budgeted_choice() {
        let trace = generate::uniform_random(3_000, 256, 9);
        let exploration = exploration_of(&trace);
        let model = CostModel::default_180nm();
        let free = energy_optimal_unconstrained(&exploration, 0, &model);
        for fraction in [0.0, 0.05, 0.20, 1.0] {
            let constrained =
                energy_optimal(&exploration, MissBudget::FractionOfMax(fraction), 0, &model)
                    .unwrap();
            assert!(free.report.dynamic_nj <= constrained.report.dynamic_nj + 1e-9);
        }
    }

    #[test]
    fn line_sweep_covers_all_sizes() {
        let trace = generate::loop_pattern(0, 128, 40);
        let model = CostModel::default_180nm();
        let sweep = line_size_sweep(&trace, 3, &model).unwrap();
        assert_eq!(sweep.len(), 4);
        for (bits, p) in sweep.iter().enumerate() {
            assert_eq!(p.line_bits, bits as u32);
        }
        // A pure sequential loop benefits from longer lines: the best line
        // size is not the single-word one.
        let best = sweep
            .iter()
            .min_by(|a, b| a.report.dynamic_nj.total_cmp(&b.report.dynamic_nj))
            .unwrap();
        assert!(
            best.line_bits > 0,
            "sequential loop should prefer wider lines"
        );
    }

    #[test]
    fn empty_trace_errors() {
        let model = CostModel::default_180nm();
        assert!(matches!(
            line_size_sweep(&Trace::new(), 2, &model),
            Err(ExploreError::EmptyTrace)
        ));
    }
}
