//! Cache geometry: the physical parameters the cost models consume.

use cachedse_sim::{CacheConfig, DesignPoint};
use std::fmt;

/// Address width assumed when sizing tags (word-addressed, as everywhere in
/// this workspace).
pub const ADDRESS_BITS: u32 = 32;

/// Bits per data word.
pub const WORD_BITS: u32 = 32;

/// The physical shape of one cache: rows, ways, and line size.
///
/// # Examples
///
/// ```
/// use cachedse_cost::CacheGeometry;
///
/// let g = CacheGeometry::new(256, 2, 1); // 256 rows, 2-way, 2-word lines
/// assert_eq!(g.size_words(), 1024);
/// assert_eq!(g.index_bits(), 8);
/// assert_eq!(g.tag_bits(), 32 - 8 - 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    depth: u32,
    associativity: u32,
    line_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry; `line_bits` is `log2` of the line size in words.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not a power of two or `associativity` is zero.
    #[must_use]
    pub fn new(depth: u32, associativity: u32, line_bits: u32) -> Self {
        assert!(
            depth > 0 && depth.is_power_of_two(),
            "depth must be a power of two"
        );
        assert!(associativity > 0, "associativity must be nonzero");
        Self {
            depth,
            associativity,
            line_bits,
        }
    }

    /// Geometry of an explored design point at a given line size.
    #[must_use]
    pub fn from_design_point(point: DesignPoint, line_bits: u32) -> Self {
        Self::new(point.depth, point.associativity, line_bits)
    }

    /// Number of rows.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Ways per row.
    #[must_use]
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// `log2` of the line size in words.
    #[must_use]
    pub fn line_bits(&self) -> u32 {
        self.line_bits
    }

    /// Words per line.
    #[must_use]
    pub fn line_words(&self) -> u32 {
        1 << self.line_bits
    }

    /// `log2(depth)`.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.depth.trailing_zeros()
    }

    /// Tag width: address bits minus index and line-offset bits.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        ADDRESS_BITS.saturating_sub(self.index_bits() + self.line_bits)
    }

    /// Total data capacity in words.
    #[must_use]
    pub fn size_words(&self) -> u64 {
        u64::from(self.depth) * u64::from(self.associativity) * u64::from(self.line_words())
    }

    /// Total storage bits: data plus tag plus valid/dirty state per line.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let lines = u64::from(self.depth) * u64::from(self.associativity);
        let per_line =
            u64::from(self.line_words()) * u64::from(WORD_BITS) + u64::from(self.tag_bits()) + 2;
        lines * per_line
    }
}

impl From<&CacheConfig> for CacheGeometry {
    fn from(config: &CacheConfig) -> Self {
        Self::new(config.depth(), config.associativity(), config.line_bits())
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}w",
            self.depth,
            self.associativity,
            self.line_words()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let g = CacheGeometry::new(512, 2, 2);
        assert_eq!(g.index_bits(), 9);
        assert_eq!(g.line_words(), 4);
        assert_eq!(g.tag_bits(), 32 - 9 - 2);
        assert_eq!(g.size_words(), 512 * 2 * 4);
        assert_eq!(g.storage_bits(), 512 * 2 * (4 * 32 + 21 + 2));
        assert_eq!(g.to_string(), "512x2x4w");
    }

    #[test]
    fn from_config_and_point() {
        let config = CacheConfig::lru(64, 4).unwrap();
        let g = CacheGeometry::from(&config);
        assert_eq!(g.depth(), 64);
        let p = DesignPoint {
            depth: 8,
            associativity: 2,
        };
        assert_eq!(CacheGeometry::from_design_point(p, 1).line_words(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_depth() {
        let _ = CacheGeometry::new(3, 1, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_ways() {
        let _ = CacheGeometry::new(4, 0, 0);
    }
}
