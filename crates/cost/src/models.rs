//! The first-order cost models.
//!
//! Every formula is written out where it is computed, with named constants,
//! so the models can be audited and recalibrated at a glance. They follow
//! the structure (not the circuit-level detail) of CACTI: an access pays for
//! row decode, then `A` parallel tag compares and data reads, then way
//! selection; a miss additionally pays bus + main-memory costs per line
//! word.

use std::fmt;

use cachedse_sim::SimStats;

use crate::geometry::CacheGeometry;

/// Dynamic-energy model (picojoules).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Decoder energy per indexed row bit (pJ): wordline/decoder tree cost
    /// grows with `log2(depth)`.
    pub decode_pj_per_index_bit: f64,
    /// Bitline/sense energy per row of the array touched (pJ): grows with
    /// `sqrt(depth)` as bitlines lengthen.
    pub bitline_pj_per_sqrt_row: f64,
    /// Energy per tag bit compared, per way (pJ).
    pub tag_pj_per_bit: f64,
    /// Energy per data bit read out, per way (pJ) — all ways read in a
    /// conventional parallel-access set-associative cache.
    pub data_pj_per_bit: f64,
    /// Output driver / way-mux energy per access (pJ).
    pub output_pj: f64,
}

impl EnergyModel {
    /// Representative 0.18 µm constants.
    #[must_use]
    pub fn default_180nm() -> Self {
        Self {
            decode_pj_per_index_bit: 0.8,
            bitline_pj_per_sqrt_row: 0.9,
            tag_pj_per_bit: 0.05,
            data_pj_per_bit: 0.04,
            output_pj: 1.2,
        }
    }

    /// Dynamic energy of one cache read access (pJ).
    #[must_use]
    pub fn read_energy_pj(&self, g: &CacheGeometry) -> f64 {
        let ways = f64::from(g.associativity());
        let decode = self.decode_pj_per_index_bit * f64::from(g.index_bits().max(1))
            + self.bitline_pj_per_sqrt_row * f64::from(g.depth()).sqrt();
        let tags = ways * self.tag_pj_per_bit * f64::from(g.tag_bits());
        let data =
            ways * self.data_pj_per_bit * f64::from(g.line_words() * crate::geometry::WORD_BITS);
        decode + tags + data + self.output_pj
    }
}

/// Off-chip memory and bus model: what a miss costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryModel {
    /// Energy to drive one word across the system bus (pJ) — the paper's
    /// "power costly communication over the system bus that crosses chip
    /// boundaries".
    pub bus_pj_per_word: f64,
    /// Main-memory access energy per line fill (pJ).
    pub mainmem_pj_per_access: f64,
    /// Stall cycles to start a line fill.
    pub miss_latency_cycles: u64,
    /// Additional stall cycles per burst word after the first.
    pub cycles_per_burst_word: u64,
}

impl MemoryModel {
    /// Representative embedded SDRAM + on-board bus constants.
    #[must_use]
    pub fn default_embedded() -> Self {
        Self {
            bus_pj_per_word: 18.0,
            mainmem_pj_per_access: 160.0,
            miss_latency_cycles: 20,
            cycles_per_burst_word: 2,
        }
    }

    /// Energy of one miss (line fill) in pJ.
    #[must_use]
    pub fn miss_energy_pj(&self, g: &CacheGeometry) -> f64 {
        self.mainmem_pj_per_access + self.bus_pj_per_word * f64::from(g.line_words())
    }

    /// Stall cycles of one miss.
    #[must_use]
    pub fn miss_cycles(&self, g: &CacheGeometry) -> u64 {
        self.miss_latency_cycles + self.cycles_per_burst_word * u64::from(g.line_words() - 1)
    }
}

/// Area model (square micrometres).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Area per SRAM storage bit (µm²).
    pub um2_per_bit: f64,
    /// Area per way for the tag comparator and way-select logic (µm²).
    pub um2_per_comparator: f64,
    /// Decoder area per indexed row (µm²).
    pub um2_per_row_decode: f64,
}

impl AreaModel {
    /// Representative 0.18 µm constants (≈4.6 µm² per 6T SRAM bit).
    #[must_use]
    pub fn default_180nm() -> Self {
        Self {
            um2_per_bit: 4.6,
            um2_per_comparator: 950.0,
            um2_per_row_decode: 45.0,
        }
    }

    /// Total estimated area (µm²).
    #[must_use]
    pub fn area_um2(&self, g: &CacheGeometry) -> f64 {
        self.um2_per_bit * g.storage_bits() as f64
            + self.um2_per_comparator * f64::from(g.associativity())
            + self.um2_per_row_decode * f64::from(g.depth())
    }
}

/// Access-time model (nanoseconds) — decode, sense, compare, way-mux.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingModel {
    /// Fixed sense/precharge time (ns).
    pub base_ns: f64,
    /// Added per index bit of row decode (ns).
    pub ns_per_index_bit: f64,
    /// Added per doubling of associativity (way-select mux depth, ns).
    pub ns_per_way_doubling: f64,
}

impl TimingModel {
    /// Representative 0.18 µm constants.
    #[must_use]
    pub fn default_180nm() -> Self {
        Self {
            base_ns: 0.9,
            ns_per_index_bit: 0.11,
            ns_per_way_doubling: 0.18,
        }
    }

    /// Estimated access time (ns).
    #[must_use]
    pub fn access_ns(&self, g: &CacheGeometry) -> f64 {
        let way_levels = (32 - g.associativity().leading_zeros() - 1) as f64;
        self.base_ns
            + self.ns_per_index_bit * f64::from(g.index_bits())
            + self.ns_per_way_doubling * way_levels
    }
}

/// The three models bundled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-access dynamic energy.
    pub energy: EnergyModel,
    /// Miss (bus + main memory) costs.
    pub memory: MemoryModel,
    /// Silicon area.
    pub area: AreaModel,
    /// Access latency.
    pub timing: TimingModel,
}

impl CostModel {
    /// The default 0.18 µm embedded technology bundle.
    #[must_use]
    pub fn default_180nm() -> Self {
        Self {
            energy: EnergyModel::default_180nm(),
            memory: MemoryModel::default_embedded(),
            area: AreaModel::default_180nm(),
            timing: TimingModel::default_180nm(),
        }
    }

    /// Evaluates a run: `accesses` cache accesses of which `misses` missed
    /// (cold misses included — they fill lines and burn bus energy too).
    #[must_use]
    pub fn evaluate(&self, g: &CacheGeometry, accesses: u64, misses: u64) -> CostReport {
        let access_energy = self.energy.read_energy_pj(g) * accesses as f64;
        let miss_energy = self.memory.miss_energy_pj(g) * misses as f64;
        let stall_cycles = self.memory.miss_cycles(g) * misses;
        let cycles = accesses + stall_cycles;
        CostReport {
            geometry: *g,
            accesses,
            misses,
            dynamic_nj: (access_energy + miss_energy) / 1e3,
            cycles,
            area_um2: self.area.area_um2(g),
            access_ns: self.timing.access_ns(g),
        }
    }

    /// Evaluates simulator output directly.
    #[must_use]
    pub fn evaluate_stats(&self, g: &CacheGeometry, stats: &SimStats) -> CostReport {
        self.evaluate(g, stats.accesses, stats.misses)
    }
}

/// The evaluated cost of running one workload on one cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostReport {
    /// The geometry evaluated.
    pub geometry: CacheGeometry,
    /// Cache accesses.
    pub accesses: u64,
    /// Total misses (cold included).
    pub misses: u64,
    /// Total dynamic energy, nanojoules.
    pub dynamic_nj: f64,
    /// Execution cycles charged to the memory system (1 per access + miss
    /// stalls).
    pub cycles: u64,
    /// Estimated silicon area (µm²).
    pub area_um2: f64,
    /// Estimated access time (ns).
    pub access_ns: f64,
}

impl CostReport {
    /// Energy–delay product (nJ · cycles): the classic single-figure merit.
    #[must_use]
    pub fn energy_delay(&self) -> f64 {
        self.dynamic_nj * self.cycles as f64
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1} nJ, {} cycles, {:.0} um2, {:.2} ns",
            self.geometry, self.dynamic_nj, self.cycles, self.area_um2, self.access_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;

    fn g(depth: u32, ways: u32, line_bits: u32) -> CacheGeometry {
        CacheGeometry::new(depth, ways, line_bits)
    }

    #[test]
    fn energy_grows_with_each_axis() {
        let m = EnergyModel::default_180nm();
        let base = m.read_energy_pj(&g(64, 1, 0));
        assert!(m.read_energy_pj(&g(128, 1, 0)) > base, "deeper costs more");
        assert!(m.read_energy_pj(&g(64, 2, 0)) > base, "more ways cost more");
        assert!(
            m.read_energy_pj(&g(64, 1, 1)) > base,
            "wider lines cost more"
        );
    }

    #[test]
    fn miss_costs_scale_with_line() {
        let m = MemoryModel::default_embedded();
        assert!(m.miss_energy_pj(&g(4, 1, 2)) > m.miss_energy_pj(&g(4, 1, 0)));
        assert_eq!(m.miss_cycles(&g(4, 1, 0)), 20);
        assert_eq!(m.miss_cycles(&g(4, 1, 2)), 20 + 2 * 3);
    }

    #[test]
    fn area_dominated_by_storage() {
        let m = AreaModel::default_180nm();
        let small = m.area_um2(&g(64, 1, 0));
        let double = m.area_um2(&g(128, 1, 0));
        assert!(double > 1.7 * small && double < 2.3 * small);
    }

    #[test]
    fn timing_grows_with_depth_and_ways() {
        let m = TimingModel::default_180nm();
        assert!(m.access_ns(&g(256, 1, 0)) > m.access_ns(&g(16, 1, 0)));
        assert!(m.access_ns(&g(16, 8, 0)) > m.access_ns(&g(16, 1, 0)));
        // A direct-mapped cache has zero way-mux levels.
        let dm = m.access_ns(&g(16, 1, 0));
        assert!((dm - (0.9 + 0.11 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn evaluate_accounts_misses() {
        let model = CostModel::default_180nm();
        let geom = g(64, 2, 0);
        let clean = model.evaluate(&geom, 10_000, 0);
        let missy = model.evaluate(&geom, 10_000, 1_000);
        assert_eq!(clean.cycles, 10_000);
        assert_eq!(missy.cycles, 10_000 + 20 * 1_000);
        assert!(missy.dynamic_nj > clean.dynamic_nj);
        assert!(missy.energy_delay() > clean.energy_delay());
        assert!(missy.to_string().contains("64x2x1w"));
    }

    /// More misses never reduce energy or cycles.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn cost_monotone_in_misses() {
        let mut rng = SplitMix64::seed_from_u64(0xC057);
        for _ in 0..64 {
            let accesses = rng.gen_range(1u64..1_000_000);
            let m1 = rng.gen_range(0u64..10_000);
            let m2 = rng.gen_range(0u64..10_000);
            let model = CostModel::default_180nm();
            let geom = g(128, 2, 1);
            let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
            let a = model.evaluate(&geom, accesses, lo);
            let b = model.evaluate(&geom, accesses, hi);
            assert!(b.dynamic_nj >= a.dynamic_nj);
            assert!(b.cycles >= a.cycles);
        }
    }

    /// All cost figures are finite and positive for sane geometries.
    #[test]
    fn costs_are_finite() {
        let mut rng = SplitMix64::seed_from_u64(0xF1217E);
        for _ in 0..64 {
            let index_bits = rng.gen_range(0u32..16);
            let ways = rng.gen_range(1u32..16);
            let line_bits = rng.gen_range(0u32..4);
            let model = CostModel::default_180nm();
            let geom = g(1 << index_bits, ways, line_bits);
            let r = model.evaluate(&geom, 1000, 100);
            assert!(r.dynamic_nj.is_finite() && r.dynamic_nj > 0.0);
            assert!(r.area_um2.is_finite() && r.area_um2 > 0.0);
            assert!(r.access_ns.is_finite() && r.access_ns > 0.0);
        }
    }
}
