//! Energy, area, and timing models for the explored cache design space.
//!
//! The paper's motivation is energy as much as performance: cache fetches
//! from off-chip memory are "power costly communication over the system bus
//! that crosses chip boundaries", and its future-work section names
//! management policies, line size, and bus architecture as the next design
//! axes. This crate supplies the missing objective function: first-order,
//! CACTI-flavored (the paper's reference \[11\]) models of
//!
//! * **dynamic energy per access** ([`EnergyModel`]) — decoder, tag
//!   compares, and data-array read scale with depth, associativity, and line
//!   size;
//! * **miss cost** — bus transfer + main-memory access energy and stall
//!   cycles per line fill ([`MemoryModel`]);
//! * **area** ([`AreaModel`]) — storage bits plus per-way comparator and
//!   decoder overhead;
//! * **access time** ([`TimingModel`]) — decode + way-mux critical path.
//!
//! Combined with the exact per-configuration miss counts of
//! `cachedse-core`, the [`select`] module turns the paper's
//! miss-constrained exploration into an *energy-optimal* selection without
//! any simulation (every quantity it needs — accesses, cold misses, misses
//! per `(D, A)` — is already in the analytical profiles).
//!
//! The constants are representative of a late-1990s/early-2000s embedded
//! process (0.18 µm), the technology of the paper's era. They are exposed as
//! plain struct fields: calibrate them against your own characterization
//! data; the *relative* rankings these models produce are the point, not
//! absolute joules.
//!
//! # Examples
//!
//! ```
//! use cachedse_cost::{CacheGeometry, CostModel};
//!
//! let model = CostModel::default_180nm();
//! let small = CacheGeometry::new(64, 1, 0);
//! let big = CacheGeometry::new(1024, 4, 2);
//! assert!(model.energy.read_energy_pj(&small) < model.energy.read_energy_pj(&big));
//! assert!(model.area.area_um2(&small) < model.area.area_um2(&big));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod models;

pub mod select;

pub use geometry::CacheGeometry;
pub use models::{AreaModel, CostModel, CostReport, EnergyModel, MemoryModel, TimingModel};
