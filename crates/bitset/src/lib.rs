//! Dense bitsets tuned for the set algebra of analytical cache design space
//! exploration.
//!
//! The analytical cache-exploration algorithm of Ghosh & Givargis (DATE 2003)
//! is built almost entirely out of set operations over *unique memory
//! reference identifiers*: the zero/one sets of Table 3, the BCAT node sets of
//! Figure 3, and the conflict sets of the MRCT (Table 4) are all subsets of
//! `{0, 1, …, N'−1}` where `N'` is the number of unique references. Section
//! 2.4 of the paper notes that "the extensive use of sets in our technique is
//! due to the fact that sets are efficient to represent, store, and manipulate
//! on a computer system using bit vectors" — this crate is that bit-vector
//! representation.
//!
//! [`DenseBitSet`] stores membership in packed `u64` words and provides the
//! operations the algorithm is hot on:
//!
//! * [`intersection_count`](DenseBitSet::intersection_count) — `|S ∩ C|`
//!   without allocating, the inner loop of the paper's Algorithm 3;
//! * in-place and allocating intersection/union/difference — Algorithm 1's
//!   `Z ∩ Z_l` style cross intersections;
//! * ordered iteration over members ([`DenseBitSet::ones`]).
//!
//! # Examples
//!
//! ```
//! use cachedse_bitset::DenseBitSet;
//!
//! // The zero/one sets of the paper's running example (Table 3), bit B0:
//! // Z0 = {2, 3, 5}, O0 = {1, 4}  (reference identifiers).
//! let z0: DenseBitSet = [2, 3, 5].into_iter().collect();
//! let o0: DenseBitSet = [1, 4].into_iter().collect();
//!
//! assert_eq!(z0.len(), 3);
//! assert!(z0.is_disjoint(&o0));
//! assert_eq!(z0.intersection_count(&o0), 0);
//!
//! let all = z0.union(&o0);
//! assert_eq!(all.ones().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::FromIterator;
use std::ops::{BitAnd, BitOr, Sub};

const WORD_BITS: usize = 64;

#[inline]
fn word_index(bit: usize) -> (usize, u32) {
    (bit / WORD_BITS, (bit % WORD_BITS) as u32)
}

/// A growable set of `usize` values stored as a dense bit vector.
///
/// Membership of value `v` costs one word load; intersection counting over two
/// sets costs one pass of `AND` + popcount over the shorter word array and
/// allocates nothing. Values are unbounded above: the set grows automatically
/// on [`insert`](Self::insert).
///
/// Two sets compare equal iff they contain the same values, regardless of
/// their internal capacities.
///
/// # Examples
///
/// ```
/// use cachedse_bitset::DenseBitSet;
///
/// let mut s = DenseBitSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    /// Cached number of set bits; maintained by every mutating operation.
    ones: usize,
}

impl DenseBitSet {
    /// Creates an empty set.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = cachedse_bitset::DenseBitSet::new();
    /// assert!(s.is_empty());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with room for values `0..bits` without
    /// reallocation.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = cachedse_bitset::DenseBitSet::with_capacity(1000);
    /// assert!(s.capacity() >= 1000);
    /// assert!(s.is_empty());
    /// ```
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(WORD_BITS)],
            ones: 0,
        }
    }

    /// Number of values the set can hold without growing.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Builds a set directly from packed words (bit `i` of word `w` encodes
    /// membership of value `w * 64 + i`). The member count is derived by one
    /// popcount pass; trailing zero words are permitted (capacity never
    /// affects comparisons).
    ///
    /// This is the word-parallel construction path: producers that already
    /// hold a whole membership column as machine words (the zero/one set
    /// transpose, complements against a validity mask) hand it over without
    /// `n` single-bit inserts.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_bitset::DenseBitSet;
    ///
    /// let s = DenseBitSet::from_words(vec![0b1001, 1]);
    /// assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 3, 64]);
    /// let t: DenseBitSet = [0, 3, 64].into_iter().collect();
    /// assert_eq!(s, t);
    /// ```
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> Self {
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Self { words, ones }
    }

    /// Number of values in the set. O(1): the count is cached.
    ///
    /// # Examples
    ///
    /// ```
    /// let s: cachedse_bitset::DenseBitSet = [1, 4, 9].into_iter().collect();
    /// assert_eq!(s.len(), 3);
    /// ```
    #[must_use]
    pub fn len(&self) -> usize {
        self.ones
    }

    /// Returns `true` if the set contains no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Removes all values, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Ensures the set can represent values `0..bits` without further
    /// allocation.
    pub fn grow(&mut self, bits: usize) {
        let needed = bits.div_ceil(WORD_BITS);
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
    }

    /// Adds `value` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut s = cachedse_bitset::DenseBitSet::new();
    /// assert!(s.insert(7));
    /// assert!(!s.insert(7));
    /// ```
    pub fn insert(&mut self, value: usize) -> bool {
        let (w, b) = word_index(value);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.ones += usize::from(newly);
        newly
    }

    /// Removes `value` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        let (w, b) = word_index(value);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.ones -= usize::from(present);
        present
    }

    /// Returns `true` if `value` is in the set.
    #[must_use]
    pub fn contains(&self, value: usize) -> bool {
        let (w, b) = word_index(value);
        self.words.get(w).is_some_and(|&word| word & (1 << b) != 0)
    }

    /// Number of values in `self ∩ other`, computed without allocation.
    ///
    /// This is the hot operation of the postlude phase (Algorithm 3 of the
    /// paper), which tests `|S ∩ C| ≥ A` once per conflict set per node.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_bitset::DenseBitSet;
    /// let s: DenseBitSet = [1, 4].into_iter().collect();
    /// let c: DenseBitSet = [2, 3, 4].into_iter().collect();
    /// assert_eq!(s.intersection_count(&c), 1);
    /// ```
    #[must_use]
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if the two sets share no values.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every value of `self` is in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words.iter().enumerate().all(|(i, &a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// Replaces `self` with `self ∩ other`.
    pub fn intersect_with(&mut self, other: &Self) {
        for (i, word) in self.words.iter_mut().enumerate() {
            *word &= other.words.get(i).copied().unwrap_or(0);
        }
        self.recount();
    }

    /// Replaces `self` with `self ∪ other`.
    pub fn union_with(&mut self, other: &Self) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (word, &o) in self.words.iter_mut().zip(&other.words) {
            *word |= o;
        }
        self.recount();
    }

    /// Replaces `self` with `self ∖ other`.
    pub fn difference_with(&mut self, other: &Self) {
        for (word, &o) in self.words.iter_mut().zip(&other.words) {
            *word &= !o;
        }
        self.recount();
    }

    /// Returns `self ∩ other` as a new set.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_bitset::DenseBitSet;
    /// // Algorithm 1 of the paper: L00 = Z0 ∩ Z1 = {2, 5}.
    /// let z0: DenseBitSet = [2, 3, 5].into_iter().collect();
    /// let z1: DenseBitSet = [2, 5].into_iter().collect();
    /// let l00 = z0.intersection(&z1);
    /// assert_eq!(l00.ones().collect::<Vec<_>>(), vec![2, 5]);
    /// ```
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self ∪ other` as a new set.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∖ other` as a new set.
    #[must_use]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// The packed membership words (bit `i` of word `w` encodes value
    /// `w * 64 + i`) — the inverse of [`from_words`](Self::from_words).
    /// Trailing zero words, if any, are included as stored.
    ///
    /// This is the serialization path: the artifact store spills whole
    /// membership columns as machine words rather than one value at a time.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_bitset::DenseBitSet;
    ///
    /// let s = DenseBitSet::from_words(vec![0b1001, 1]);
    /// assert_eq!(s.as_words(), &[0b1001, 1]);
    /// assert_eq!(DenseBitSet::from_words(s.as_words().to_vec()), s);
    /// ```
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the values of the set in ascending order.
    ///
    /// # Examples
    ///
    /// ```
    /// let s: cachedse_bitset::DenseBitSet = [65, 0, 64].into_iter().collect();
    /// assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 64, 65]);
    /// ```
    #[must_use]
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word: self.words.first().copied().unwrap_or(0),
            index: 0,
        }
    }

    /// Smallest value in the set, or `None` if empty.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        self.ones().next()
    }

    /// Largest value in the set, or `None` if empty.
    #[must_use]
    pub fn last(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize))
    }

    fn recount(&mut self) {
        self.ones = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Words with trailing zero words trimmed; the canonical form used by
    /// `Eq`/`Ord`/`Hash` so that capacity does not affect comparisons.
    fn trimmed(&self) -> &[u64] {
        let mut end = self.words.len();
        while end > 0 && self.words[end - 1] == 0 {
            end -= 1;
        }
        &self.words[..end]
    }
}

impl PartialEq for DenseBitSet {
    fn eq(&self, other: &Self) -> bool {
        self.trimmed() == other.trimmed()
    }
}

impl Eq for DenseBitSet {}

impl PartialOrd for DenseBitSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DenseBitSet {
    /// Lexicographic order over the ascending member sequence.
    fn cmp(&self, other: &Self) -> Ordering {
        self.ones().cmp(other.ones())
    }
}

impl Hash for DenseBitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.trimmed().hash(state);
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

impl fmt::Display for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.ones().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = Self::new();
        set.extend(iter);
        set
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitSet {
    type Item = usize;
    type IntoIter = Ones<'a>;

    fn into_iter(self) -> Ones<'a> {
        self.ones()
    }
}

impl BitAnd for &DenseBitSet {
    type Output = DenseBitSet;

    fn bitand(self, rhs: &DenseBitSet) -> DenseBitSet {
        self.intersection(rhs)
    }
}

impl BitOr for &DenseBitSet {
    type Output = DenseBitSet;

    fn bitor(self, rhs: &DenseBitSet) -> DenseBitSet {
        self.union(rhs)
    }
}

impl Sub for &DenseBitSet {
    type Output = DenseBitSet;

    fn sub(self, rhs: &DenseBitSet) -> DenseBitSet {
        self.difference(rhs)
    }
}

/// Ascending iterator over the values of a [`DenseBitSet`], returned by
/// [`DenseBitSet::ones`].
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    word: u64,
    index: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word == 0 {
            self.index += 1;
            self.word = *self.words.get(self.index)?;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.index * WORD_BITS + bit)
    }
}

/// A borrowed set view over an ascending slice of `u32` identifiers.
///
/// This is the zero-copy counterpart of [`DenseBitSet`] for producers that
/// keep their sets as sorted ranges of a flat arena (the BCAT permutation
/// arena, CSR-style layouts): the view costs nothing to create, membership
/// is a binary search, and iteration walks the slice directly. The member
/// API deliberately mirrors `DenseBitSet` (`len`, `is_empty`, `contains`,
/// `ones`) so call sites can switch representations without rewriting.
///
/// # Examples
///
/// ```
/// use cachedse_bitset::SliceSet;
///
/// let arena = [0u32, 2, 3, 7, 9, 10];
/// let s = SliceSet::new(&arena[1..4]); // the range {2, 3, 7}
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(3));
/// assert!(!s.contains(9));
/// assert_eq!(s.ones().collect::<Vec<_>>(), vec![2, 3, 7]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceSet<'a> {
    ids: &'a [u32],
}

impl<'a> SliceSet<'a> {
    /// Wraps a strictly ascending slice of identifiers.
    ///
    /// The ordering is the caller's contract (checked in debug builds):
    /// `contains` relies on it for binary search.
    #[must_use]
    pub fn new(ids: &'a [u32]) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "SliceSet members must be strictly ascending"
        );
        Self { ids }
    }

    /// Number of values in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the set holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `value` is a member (binary search over the sorted slice).
    #[must_use]
    pub fn contains(&self, value: usize) -> bool {
        u32::try_from(value).is_ok_and(|v| self.ids.binary_search(&v).is_ok())
    }

    /// Iterates over the values in ascending order, as `usize` (mirrors
    /// [`DenseBitSet::ones`]).
    #[must_use]
    pub fn ones(&self) -> SliceOnes<'a> {
        SliceOnes {
            ids: self.ids.iter(),
        }
    }

    /// The underlying ascending identifier slice.
    #[must_use]
    pub fn as_slice(&self) -> &'a [u32] {
        self.ids
    }

    /// Whether the two views share no member (merge walk, no allocation).
    #[must_use]
    pub fn is_disjoint(&self, other: &SliceSet<'_>) -> bool {
        let (mut a, mut b) = (self.ids.iter().peekable(), other.ids.iter().peekable());
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                Ordering::Less => {
                    a.next();
                }
                Ordering::Greater => {
                    b.next();
                }
                Ordering::Equal => return false,
            }
        }
        true
    }

    /// Copies the view into an owned [`DenseBitSet`].
    #[must_use]
    pub fn to_dense(&self) -> DenseBitSet {
        self.ones().collect()
    }
}

impl<'a> IntoIterator for SliceSet<'a> {
    type Item = usize;
    type IntoIter = SliceOnes<'a>;

    fn into_iter(self) -> SliceOnes<'a> {
        self.ones()
    }
}

/// Ascending iterator over the values of a [`SliceSet`], returned by
/// [`SliceSet::ones`].
#[derive(Clone, Debug)]
pub struct SliceOnes<'a> {
    ids: std::slice::Iter<'a, u32>,
}

impl Iterator for SliceOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.ids.next().map(|&v| v as usize)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl ExactSizeIterator for SliceOnes<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Local SplitMix64 (this crate is dependency-free by design, so the
    /// shared `cachedse_trace::rng` is out of reach; same algorithm, same
    /// constants).
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: usize) -> usize {
            ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
        }

        fn coin(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }

        fn random_set(&mut self, universe: usize, max_len: usize) -> BTreeSet<usize> {
            (0..self.below(max_len))
                .map(|_| self.below(universe))
                .collect()
        }
    }

    fn set_of(values: &[usize]) -> DenseBitSet {
        values.iter().copied().collect()
    }

    #[test]
    fn new_is_empty() {
        let s = DenseBitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.ones().count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new();
        assert!(s.insert(100));
        assert!(!s.insert(100));
        assert!(s.contains(100));
        assert!(!s.contains(99));
        assert_eq!(s.len(), 1);
        assert!(s.remove(100));
        assert!(!s.remove(100));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_beyond_capacity_is_noop() {
        let mut s = set_of(&[1]);
        assert!(!s.remove(10_000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn word_boundaries() {
        let mut s = DenseBitSet::new();
        for v in [0, 63, 64, 127, 128] {
            assert!(s.insert(v));
        }
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(s.last(), Some(128));
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = DenseBitSet::with_capacity(1024);
        a.insert(3);
        let b = set_of(&[3]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn paper_running_example_cross_intersections() {
        // Table 3 / Section 2.3: L00 = Z0 ∩ Z1 = {2,5}, L01 = Z0 ∩ O1 = {3},
        // L10 = O0 ∩ Z1 = {}, L11 = O0 ∩ O1 = {1,4}.
        let z0 = set_of(&[2, 3, 5]);
        let o0 = set_of(&[1, 4]);
        let z1 = set_of(&[2, 5]);
        let o1 = set_of(&[1, 3, 4]);
        assert_eq!(z0.intersection(&z1), set_of(&[2, 5]));
        assert_eq!(z0.intersection(&o1), set_of(&[3]));
        assert_eq!(o0.intersection(&z1), DenseBitSet::new());
        assert_eq!(o0.intersection(&o1), set_of(&[1, 4]));
    }

    #[test]
    fn intersection_count_matches_materialized() {
        let s = set_of(&[1, 4]);
        let c1 = set_of(&[2, 3, 4]);
        let c2 = set_of(&[2, 4, 5]);
        assert_eq!(s.intersection_count(&c1), 1);
        assert_eq!(s.intersection_count(&c2), 1);
        assert_eq!(s.intersection(&c1).len(), 1);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set_of(&[1, 2]);
        let b = set_of(&[1, 2, 3]);
        let c = set_of(&[4, 5]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(DenseBitSet::new().is_subset(&a));
        assert!(DenseBitSet::new().is_disjoint(&DenseBitSet::new()));
    }

    #[test]
    fn subset_respects_values_beyond_other_capacity() {
        let a = set_of(&[100]);
        let b = set_of(&[1]);
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn operators() {
        let a = set_of(&[1, 2, 3]);
        let b = set_of(&[3, 4]);
        assert_eq!(&a & &b, set_of(&[3]));
        assert_eq!(&a | &b, set_of(&[1, 2, 3, 4]));
        assert_eq!(&a - &b, set_of(&[1, 2]));
    }

    #[test]
    fn display_and_debug() {
        let s = set_of(&[5, 2]);
        assert_eq!(s.to_string(), "{2,5}");
        assert_eq!(format!("{s:?}"), "{2, 5}");
        assert_eq!(DenseBitSet::new().to_string(), "{}");
    }

    #[test]
    fn ordering_is_lexicographic_on_members() {
        assert!(set_of(&[1]) < set_of(&[2]));
        assert!(set_of(&[1, 5]) < set_of(&[2]));
        assert!(set_of(&[1]) < set_of(&[1, 2]));
    }

    #[test]
    fn clear_keeps_working() {
        let mut s = set_of(&[1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        s.insert(9);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_with_grows() {
        let mut a = set_of(&[1]);
        let b = set_of(&[500]);
        a.union_with(&b);
        assert!(a.contains(500));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DenseBitSet>();
    }

    // The three sweeps below are deterministic randomized versions of what
    // were proptest properties, checked against std's BTreeSet as the model.

    #[test]
    fn model_insert_remove() {
        let mut rng = Rng(0x11537);
        for _ in 0..64 {
            let mut s = DenseBitSet::new();
            let mut model = BTreeSet::new();
            for _ in 0..rng.below(200) {
                let v = rng.below(500);
                if rng.coin() {
                    assert_eq!(s.insert(v), model.insert(v));
                } else {
                    assert_eq!(s.remove(v), model.remove(&v));
                }
                assert_eq!(s.len(), model.len());
            }
            assert_eq!(
                s.ones().collect::<Vec<_>>(),
                model.into_iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn model_set_ops() {
        let mut rng = Rng(0x5E7);
        for _ in 0..64 {
            let a = rng.random_set(300, 100);
            let b = rng.random_set(300, 100);
            let sa: DenseBitSet = a.iter().copied().collect();
            let sb: DenseBitSet = b.iter().copied().collect();

            let inter: BTreeSet<_> = a.intersection(&b).copied().collect();
            let uni: BTreeSet<_> = a.union(&b).copied().collect();
            let diff: BTreeSet<_> = a.difference(&b).copied().collect();

            assert_eq!(
                sa.intersection(&sb).ones().collect::<Vec<_>>(),
                inter.iter().copied().collect::<Vec<_>>()
            );
            assert_eq!(
                sa.union(&sb).ones().collect::<Vec<_>>(),
                uni.iter().copied().collect::<Vec<_>>()
            );
            assert_eq!(
                sa.difference(&sb).ones().collect::<Vec<_>>(),
                diff.iter().copied().collect::<Vec<_>>()
            );
            assert_eq!(sa.intersection_count(&sb), inter.len());
            assert_eq!(sa.is_disjoint(&sb), inter.is_empty());
            assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
        }
    }

    #[test]
    fn roundtrip_from_iterator() {
        let mut rng = Rng(0x2007);
        for _ in 0..64 {
            let values = rng.random_set(2000, 300);
            let s: DenseBitSet = values.iter().copied().collect();
            assert_eq!(s.len(), values.len());
            assert_eq!(
                s.ones().collect::<Vec<_>>(),
                values.iter().copied().collect::<Vec<_>>()
            );
            assert_eq!(s.first(), values.iter().next().copied());
            assert_eq!(s.last(), values.iter().next_back().copied());
        }
    }

    /// `from_words` equals the insert-built set, including sets whose word
    /// array carries trailing zeros.
    #[test]
    fn from_words_matches_inserts() {
        let mut rng = Rng(0x0F00D);
        for _ in 0..64 {
            let values = rng.random_set(500, 120);
            let mut words = vec![0u64; 500usize.div_ceil(64)];
            for &v in &values {
                words[v / 64] |= 1 << (v % 64);
            }
            let by_words = DenseBitSet::from_words(words);
            let by_inserts: DenseBitSet = values.iter().copied().collect();
            assert_eq!(by_words, by_inserts);
            assert_eq!(by_words.len(), values.len());
        }
        assert!(DenseBitSet::from_words(Vec::new()).is_empty());
        assert!(DenseBitSet::from_words(vec![0, 0, 0]).is_empty());
    }

    /// The slice view agrees with a dense set built from the same members,
    /// on every operation the view offers.
    #[test]
    fn slice_set_matches_dense() {
        let mut rng = Rng(0xBEEF);
        for _ in 0..64 {
            let values = rng.random_set(800, 100);
            let ids: Vec<u32> = values.iter().map(|&v| v as u32).collect();
            let view = SliceSet::new(&ids);
            let dense: DenseBitSet = values.iter().copied().collect();
            assert_eq!(view.len(), dense.len());
            assert_eq!(view.is_empty(), dense.is_empty());
            assert_eq!(
                view.ones().collect::<Vec<_>>(),
                dense.ones().collect::<Vec<_>>()
            );
            for probe in 0..810 {
                assert_eq!(view.contains(probe), dense.contains(probe), "{probe}");
            }
            assert_eq!(view.to_dense(), dense);
            assert_eq!(view.as_slice(), &ids[..]);
        }
    }

    #[test]
    fn slice_set_disjointness() {
        let even: Vec<u32> = (0..50).map(|v| v * 2).collect();
        let odd: Vec<u32> = (0..50).map(|v| v * 2 + 1).collect();
        assert!(SliceSet::new(&even).is_disjoint(&SliceSet::new(&odd)));
        assert!(!SliceSet::new(&even).is_disjoint(&SliceSet::new(&even[10..])));
        assert!(SliceSet::new(&[]).is_disjoint(&SliceSet::new(&even)));
        assert!(!SliceSet::new(&even).contains(usize::MAX));
    }
}
