//! Differential oracle for the output-optimal MRCT builder.
//!
//! `Mrct::build` (Fenwick-sized CSR arena + tombstone recency array, see
//! DESIGN.md §12) must be *exactly*
//! equal — same sets, same order, same flat-arena representation — to
//! `Mrct::build_naive`, the paper's Algorithm 2 verbatim. Three corpora
//! exercise it:
//!
//! 1. every bundled kernel (both captured sides) at small parameters, so
//!    the quadratic oracle stays tractable in debug builds;
//! 2. a seeded SplitMix64 sweep of synthetic traces across uniform,
//!    strided, hot/cold, and sweep-reuse shapes;
//! 3. hand-built CSR arena edge cases: single-occurrence-only traces,
//!    all-same-address traces, and empty conflict sets bordering
//!    non-empty ones.

use cachedse::core::Mrct;
use cachedse::trace::strip::{RefId, StrippedTrace};
use cachedse::trace::{Address, Record, Trace};
use cachedse::workloads::{
    adpcm::Adpcm, bcnt::Bcnt, blit::Blit, compress::Compress, crc::Crc, des::Des, engine::Engine,
    fir::Fir, g3fax::G3fax, pocsag::Pocsag, qurt::Qurt, ucbqsort::Ucbqsort, Kernel, KernelRun,
};

/// Small-parameter instances of all twelve kernels (mirrors the corpora in
/// `verify_workloads.rs` / `engine_differential.rs`).
fn small_runs() -> Vec<KernelRun> {
    vec![
        Adpcm { samples: 300 }.capture(),
        Bcnt {
            buffer_len: 256,
            passes: 2,
        }
        .capture(),
        Blit {
            row_words: 8,
            rows: 24,
            ops: 6,
        }
        .capture(),
        Compress { input_len: 600 }.capture(),
        Crc {
            message_len: 400,
            passes: 2,
        }
        .capture(),
        Des { blocks: 20 }.capture(),
        Engine { ticks: 250 }.capture(),
        Fir {
            taps: 10,
            samples: 400,
        }
        .capture(),
        G3fax { lines: 12 }.capture(),
        Pocsag { batches: 6 }.capture(),
        Qurt { equations: 100 }.capture(),
        Ucbqsort { elements: 300 }.capture(),
    ]
}

fn assert_builders_agree(label: &str, trace: &Trace) {
    let stripped = StrippedTrace::from_trace(trace);
    let fast = Mrct::build(&stripped);
    let naive = Mrct::build_naive(&stripped);
    assert_eq!(
        fast, naive,
        "{label}: fast builder diverged from Algorithm 2"
    );
    // The chunked parallel sizing pass must reproduce the same arena,
    // byte for byte, at any worker count.
    for workers in [2usize, 5] {
        let workers = std::num::NonZeroUsize::new(workers).expect("nonzero");
        assert_eq!(
            fast,
            Mrct::build_parallel(&stripped, workers),
            "{label}: chunked sizing diverged at {workers} workers"
        );
    }
}

#[test]
fn all_kernels_builders_agree() {
    for run in small_runs() {
        assert_builders_agree(&format!("{}.data", run.name), &run.data);
        assert_builders_agree(&format!("{}.instr", run.name), &run.instr);
    }
}

/// SplitMix64: tiny, seedable, and good enough to scatter addresses.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A randomized trace whose shape is picked by `rng`: address-space width,
/// length, and access pattern all vary, so the sweep covers deep recency
/// lists, immediate repeats, and single-occurrence tails alike.
fn random_trace(rng: &mut SplitMix64) -> Trace {
    let space = 1u64 << (1 + rng.below(9)); // 2 .. 1024 distinct addresses
    let len = 8 + rng.below(900);
    let pattern = rng.below(4);
    let mut trace = Trace::new();
    let mut walker = rng.below(space);
    for t in 0..len {
        let addr = match pattern {
            0 => rng.below(space),
            1 => {
                walker = if rng.below(16) == 0 {
                    rng.below(space)
                } else {
                    (walker + 1) % space
                };
                walker
            }
            2 => {
                if rng.below(10) < 8 {
                    rng.below(8.min(space))
                } else {
                    rng.below(space)
                }
            }
            _ => t % (1 + space / 2),
        };
        trace.push(Record::read(Address::new(
            u32::try_from(addr).expect("address fits u32"),
        )));
    }
    trace
}

#[test]
fn seeded_random_sweep_agrees() {
    let mut rng = SplitMix64(0x2003_0C5E_A12E_57AB);
    for case in 0..96 {
        let trace = random_trace(&mut rng);
        assert_builders_agree(&format!("random[{case}]"), &trace);
    }
}

/// Every address occurs exactly once: the arena is empty, every reference
/// has a zero-length set range, and the bounds arrays still line up.
#[test]
fn single_occurrence_only_trace() {
    let trace: Trace = (0..128u32)
        .map(|t| Record::read(Address::new(t << 3)))
        .collect();
    let stripped = StrippedTrace::from_trace(&trace);
    let mrct = Mrct::build(&stripped);
    assert_eq!(mrct.unique_len(), 128);
    assert_eq!(mrct.total_sets(), 0);
    assert_eq!(mrct.total_elements(), 0);
    for (_, sets) in mrct.iter() {
        assert!(sets.is_empty());
        assert_eq!(sets.get(0), None);
    }
    assert_eq!(mrct, Mrct::build_naive(&stripped));
}

/// One address repeated: maximum set count, every set empty — the arena
/// holds zero identifiers but `N - 1` set boundaries.
#[test]
fn all_same_address_trace() {
    let trace: Trace = (0..200).map(|_| Record::read(Address::new(42))).collect();
    let stripped = StrippedTrace::from_trace(&trace);
    let mrct = Mrct::build(&stripped);
    assert_eq!(mrct.unique_len(), 1);
    assert_eq!(mrct.total_sets(), 199);
    assert_eq!(mrct.total_elements(), 0);
    let sets = mrct.conflict_sets(RefId::new(0));
    assert_eq!(sets.len(), 199);
    for set in sets {
        assert!(set.is_empty());
    }
    assert_eq!(mrct, Mrct::build_naive(&stripped));
}

/// Empty conflict sets sandwiched between non-empty ones: `a b a a b a`
/// gives reference `a` the sets `{b}`, `{}`, `{b}` — zero-length arena
/// ranges must sit *between* occupied ranges without shifting them.
#[test]
fn empty_sets_between_occupied_ranges() {
    let trace: Trace = [1u32, 2, 1, 1, 2, 1]
        .into_iter()
        .map(|a| Record::read(Address::new(a)))
        .collect();
    let stripped = StrippedTrace::from_trace(&trace);
    let mrct = Mrct::build(&stripped);
    let a = mrct.conflict_sets(RefId::new(0));
    let collected: Vec<&[u32]> = a.iter().collect();
    assert_eq!(collected, vec![&[1u32][..], &[][..], &[1u32][..]]);
    let b = mrct.conflict_sets(RefId::new(1));
    let collected: Vec<&[u32]> = b.iter().collect();
    assert_eq!(collected, vec![&[0u32][..]]);
    assert_eq!(mrct, Mrct::build_naive(&stripped));
}

/// The empty trace: all three arrays degenerate but consistent.
#[test]
fn empty_trace() {
    let stripped = StrippedTrace::from_trace(&Trace::new());
    let mrct = Mrct::build(&stripped);
    assert_eq!(mrct.unique_len(), 0);
    assert_eq!(mrct.total_sets(), 0);
    assert_eq!(mrct.total_elements(), 0);
    assert_eq!(mrct, Mrct::build_naive(&stripped));
}
