//! Persistence round-trip over every embedded kernel: artifacts written
//! through the disk store and loaded back by a *fresh* store (a restarted
//! node) must compare equal to a from-scratch analysis — flat arenas,
//! trees, profiles, and all. Equality here is structural over every field
//! the codec persists, so any lossy encoding shows up as a hard `!=`, not
//! as a subtly different frontier three layers later.

use std::path::PathBuf;

use cachedse::workloads::{
    adpcm::Adpcm, bcnt::Bcnt, blit::Blit, compress::Compress, crc::Crc, des::Des, engine::Engine,
    fir::Fir, g3fax::G3fax, pocsag::Pocsag, qurt::Qurt, ucbqsort::Ucbqsort, Kernel, KernelRun,
};
use cachedse_store::{ArtifactKey, ArtifactStore, DiskStore, TraceArtifacts};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cachedse-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small-parameter instances of all twelve kernels (the same sizing as the
/// simulator-replay oracle): enough references to exercise every arena the
/// codec persists, small enough for debug builds.
fn small_runs() -> Vec<KernelRun> {
    vec![
        Adpcm { samples: 300 }.capture(),
        Bcnt {
            buffer_len: 256,
            passes: 2,
        }
        .capture(),
        Blit {
            row_words: 8,
            rows: 24,
            ops: 6,
        }
        .capture(),
        Compress { input_len: 600 }.capture(),
        Crc {
            message_len: 400,
            passes: 2,
        }
        .capture(),
        Des { blocks: 20 }.capture(),
        Engine { ticks: 250 }.capture(),
        Fir {
            taps: 10,
            samples: 400,
        }
        .capture(),
        G3fax { lines: 12 }.capture(),
        Pocsag { batches: 6 }.capture(),
        Qurt { equations: 100 }.capture(),
        Ucbqsort { elements: 300 }.capture(),
    ]
}

#[test]
fn every_kernel_round_trips_through_a_restarted_disk_store() {
    let dir = tmp_dir("kernels");
    let runs = small_runs();
    assert_eq!(runs.len(), 12, "one instance per bundled kernel");

    let mut built = Vec::new();
    {
        let store = DiskStore::open(&dir).unwrap();
        for run in &runs {
            // Cap the index bits so the widest kernels stay quick; the
            // codec path is identical at any cap.
            let bits = run.data.address_bits().min(10);
            let key = ArtifactKey::of(&run.data, bits);
            let artifacts = TraceArtifacts::build(&run.data, bits)
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", run.name));
            store.save(&key, &artifacts).unwrap();
            built.push((run.name, key, artifacts));
        }
        assert_eq!(store.len(), built.len());
    }

    // The restart: a fresh index over the same directory, decoding lazily.
    let store = DiskStore::open(&dir).unwrap();
    assert_eq!(store.len(), built.len());
    for (name, key, fresh) in &built {
        let loaded = store
            .load(key)
            .unwrap_or_else(|e| panic!("{name}: load failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: entry missing after restart"));
        assert_eq!(&loaded, fresh, "{name}: disk round-trip diverged");
        // The loaded bundle answers budgets identically, not just
        // structurally: same frontier for the paper's 10% budget.
        let budget = cachedse_core::MissBudget::FractionOfMax(0.10);
        assert_eq!(
            loaded.exploration.result(budget).unwrap(),
            fresh.exploration.result(budget).unwrap(),
            "{name}: frontier diverged after disk round-trip"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
