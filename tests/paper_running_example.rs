//! Fidelity test: every published artifact of the paper's running example
//! (Tables 1–4, Figure 3, and the Section 2.3 walkthrough) reproduced
//! through the public API.
//!
//! Identifiers: the paper numbers references 1..=5; this workspace numbers
//! them 0..=4 in the same first-appearance order.

use cachedse::bitset::DenseBitSet;
use cachedse::core::{postlude, Bcat, DesignSpaceExplorer, Engine, MissBudget, Mrct, ZeroOneSets};
use cachedse::trace::strip::{RefId, StrippedTrace};
use cachedse::trace::{paper_running_example, stats::TraceStats};

fn set(values: &[usize]) -> DenseBitSet {
    values.iter().copied().collect()
}

#[test]
fn table_1_and_2_strip() {
    let trace = paper_running_example();
    assert_eq!(trace.len(), 10, "Table 1: N = 10");
    let stripped = StrippedTrace::from_trace(&trace);
    assert_eq!(stripped.unique_len(), 5, "Table 2: N' = 5");
    let addrs: Vec<u32> = stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect();
    assert_eq!(addrs, vec![0b1011, 0b1100, 0b0110, 0b0011, 0b0100]);
}

#[test]
fn table_3_zero_one_sets() {
    let stripped = StrippedTrace::from_trace(&paper_running_example());
    let zo = ZeroOneSets::from_stripped(&stripped);
    // Paper (1-based) -> ours (0-based): subtract 1 from every member.
    assert_eq!(zo.zero(0), &set(&[1, 2, 4])); // Z0 = {2,3,5}
    assert_eq!(zo.one(0), &set(&[0, 3])); // O0 = {1,4}
    assert_eq!(zo.zero(1), &set(&[1, 4])); // Z1 = {2,5}
    assert_eq!(zo.one(1), &set(&[0, 2, 3])); // O1 = {1,3,4}
    assert_eq!(zo.zero(2), &set(&[0, 3])); // Z2 = {1,4}
    assert_eq!(zo.one(2), &set(&[1, 2, 4])); // O2 = {2,3,5}
    assert_eq!(zo.zero(3), &set(&[2, 3, 4])); // Z3 = {3,4,5}
    assert_eq!(zo.one(3), &set(&[0, 1])); // O3 = {1,2}
}

#[test]
fn table_4_mrct() {
    let stripped = StrippedTrace::from_trace(&paper_running_example());
    let mrct = Mrct::build(&stripped);
    // Table 4 lists set *contents*; the table's canonical member order is
    // recency, so sort each set before comparing against the paper.
    let sets_of = |paper_id: u32| -> Vec<Vec<u32>> {
        mrct.conflict_sets(RefId::new(paper_id - 1))
            .iter()
            .map(|s| {
                let mut set: Vec<u32> = s.iter().map(|&x| x + 1).collect(); // back to 1-based
                set.sort_unstable();
                set
            })
            .collect()
    };
    assert_eq!(sets_of(1), vec![vec![2, 3, 4], vec![2, 4, 5]]);
    assert_eq!(sets_of(2), vec![vec![1, 3, 4, 5]]);
    assert_eq!(sets_of(3), vec![vec![1, 2, 4, 5]]);
    assert_eq!(sets_of(4), vec![vec![1, 2, 5]]);
    assert_eq!(sets_of(5), Vec::<Vec<u32>>::new());
}

#[test]
fn figure_3_bcat() {
    let stripped = StrippedTrace::from_trace(&paper_running_example());
    let bcat = Bcat::from_stripped(&stripped, 4);
    // Each node's member set is a range of the permutation arena; compare
    // the slices (ascending ids) against Figure 3 directly.
    let level =
        |l: u32| -> Vec<Vec<u32>> { bcat.nodes_at(l).map(|n| n.refs_slice().to_vec()).collect() };
    // Figure 3, 0-based ids.
    assert_eq!(level(1), vec![vec![1, 2, 4], vec![0, 3]]);
    assert_eq!(level(2), vec![vec![1, 4], vec![2], vec![], vec![0, 3]]);
    assert_eq!(level(3), vec![vec![], vec![1, 4], vec![0, 3], vec![]]);
    assert_eq!(level(4), vec![vec![4], vec![1], vec![3], vec![0]]);
}

#[test]
fn section_2_3_walkthrough() {
    // "for a cache of depth two with zero desired misses, we would need to
    // set the degree of associativity A equal to ... 3"
    let trace = paper_running_example();
    let result = DesignSpaceExplorer::new(&trace)
        .explore(MissBudget::Absolute(0))
        .expect("non-empty trace");
    assert_eq!(result.associativity_of(2), Some(3));
    // Level-2 nodes {2,5},{3},{},{1,4}: zero misses with A = 2.
    assert_eq!(result.associativity_of(4), Some(2));

    // The worked miss count: at depth 4 with A = 1, the rightmost node
    // S = {1,4} contributes 1's two conflicting occurrences plus 4's one;
    // node {2,5} contributes one more: 4 total.
    let stripped = StrippedTrace::from_trace(&trace);
    let bcat = Bcat::from_stripped(&stripped, 4);
    let mrct = Mrct::build(&stripped);
    let profiles = postlude::level_profiles(&bcat, &mrct, &stripped, 4);
    assert_eq!(profiles[2].misses_at(1), 4);
}

#[test]
fn stats_and_both_engines_agree_on_the_example() {
    let trace = paper_running_example();
    let stats = TraceStats::of(&trace);
    assert_eq!((stats.total, stats.unique), (10, 5));
    for k in 0..=stats.max_misses {
        let a = DesignSpaceExplorer::new(&trace)
            .engine(Engine::DepthFirst)
            .explore(MissBudget::Absolute(k))
            .expect("valid");
        let b = DesignSpaceExplorer::new(&trace)
            .engine(Engine::TreeTable)
            .explore(MissBudget::Absolute(k))
            .expect("valid");
        assert_eq!(a, b, "k = {k}");
        cachedse::core::verify::check_result(&trace, &a).expect("verified");
    }
}
