//! Byte-identity of the streamed postlude fusion (`DESIGN.md` §16): for
//! every trace and index-bit budget, `streamed::level_profiles` must
//! return *exactly* the profiles of the materialized pipeline
//! (`Bcat::from_stripped` → `Mrct::build` → `postlude::level_profiles`)
//! — same depths, same histograms, byte for byte. The fusion is a pure
//! evaluation-order change; any divergence is a bug, not drift.
//!
//! Coverage: all 24 paper kernel traces at full size (release-mode CI
//! job; `#[ignore]`d here because the materialized reference engine takes
//! minutes per big data trace without optimizations), scaled-down kernels
//! for the debug tier, a 96-trace seeded random sweep, and the structural
//! edge cases (empty trace, single reference, everything on one row,
//! index budget past the address width).

use cachedse::core::{postlude, streamed, Bcat, Mrct};
use cachedse::sim::onepass::DepthProfile;
use cachedse::trace::rng::SplitMix64;
use cachedse::trace::strip::StrippedTrace;
use cachedse::trace::{Address, Record, Trace};

/// The materialized reference: build the full BCAT and MRCT artifacts,
/// then walk them with the tree+table postlude.
fn materialized(stripped: &StrippedTrace, max_bits: u32) -> Vec<DepthProfile> {
    let bcat = Bcat::from_stripped(stripped, max_bits);
    let mrct = Mrct::build(stripped);
    postlude::level_profiles(&bcat, &mrct, stripped, max_bits)
}

fn assert_identical(trace: &Trace, max_bits: u32, what: &str) {
    let stripped = StrippedTrace::from_trace(trace);
    let fused = streamed::level_profiles(&stripped, max_bits);
    let golden = materialized(&stripped, max_bits);
    assert_eq!(
        fused, golden,
        "{what}: streamed diverged from materialized at max_bits {max_bits}"
    );
}

/// Every one of the paper's 24 benchmark traces (12 kernels × data+instr)
/// at full published size, at the trace's own address width.
///
/// Ignored in the default (debug) test run: the materialized reference
/// spends minutes on the big data traces without optimizations. The CI
/// offline job runs it in release mode via `--include-ignored`; the
/// scaled-kernel test below keeps debug-tier coverage.
#[test]
#[ignore = "full-size sweep; run in release (CI does, via --include-ignored)"]
fn all_24_kernel_traces_are_byte_identical() {
    for kernel in cachedse::workloads::all() {
        let run = kernel.capture();
        for (side, trace) in [("data", &run.data), ("instr", &run.instr)] {
            let bits = trace.address_bits();
            assert_identical(trace, bits, &format!("{}.{side}", run.name));
        }
    }
}

/// Small-parameter versions of five structurally distinct kernels, at the
/// trace's own width and at a deliberately tighter budget.
#[test]
fn scaled_kernel_traces_are_byte_identical() {
    use cachedse::workloads::{
        bcnt::Bcnt, crc::Crc, engine::Engine as EngineKernel, fir::Fir, qurt::Qurt, Kernel,
    };
    let runs = [
        Crc {
            message_len: 600,
            passes: 2,
        }
        .capture(),
        Fir {
            taps: 12,
            samples: 600,
        }
        .capture(),
        Bcnt {
            buffer_len: 400,
            passes: 2,
        }
        .capture(),
        EngineKernel { ticks: 400 }.capture(),
        Qurt { equations: 150 }.capture(),
    ];
    for run in &runs {
        for (side, trace) in [("data", &run.data), ("instr", &run.instr)] {
            let bits = trace.address_bits();
            for max_bits in [bits, bits.saturating_sub(3)] {
                assert_identical(trace, max_bits, &format!("{}.{side}", run.name));
            }
        }
    }
}

/// 96 seeded random traces across address-space shapes and budgets.
#[test]
fn random_sweep_is_byte_identical() {
    let mut rng = SplitMix64::seed_from_u64(0x5742_EA12);
    for round in 0..96 {
        let addr_space = 1u32 << rng.gen_range(2u32..10);
        let len = rng.gen_range(1usize..400);
        let trace: Trace = (0..len)
            .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
            .collect();
        let max_bits = rng.gen_range(0u32..12);
        assert_identical(&trace, max_bits, &format!("random trace #{round}"));
    }
}

/// An empty trace yields the same (all-zero) profiles from both paths.
#[test]
fn empty_trace_is_byte_identical() {
    assert_identical(&Trace::new(), 6, "empty trace");
}

/// A single reference: one cold miss, no conflict sets anywhere.
#[test]
fn single_reference_is_byte_identical() {
    let trace: Trace = [Record::read(Address::new(42))].into_iter().collect();
    assert_identical(&trace, 8, "single reference");
}

/// Addresses that agree on their low 8 bits (multiples of 256): every
/// level up to 8 maps the whole working set onto one row, the worst case
/// for conflict-set width.
#[test]
fn all_same_row_is_byte_identical() {
    let trace: Trace = (0..200u32)
        .map(|i| Record::read(Address::new((i % 32) << 8)))
        .collect();
    for max_bits in [4, 8] {
        assert_identical(&trace, max_bits, "all-same-row");
    }
}

/// An index budget far past the address width: the extra levels split
/// nothing further, and both paths must agree on that plateau too.
#[test]
fn over_budget_index_bits_are_byte_identical() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    let trace: Trace = (0..120)
        .map(|_| Record::read(Address::new(rng.gen_range(0u32..16))))
        .collect();
    assert_identical(&trace, 12, "over-budget index bits");
}
