//! Byte-identity of the chunked parallel streamed fold (`DESIGN.md` §17):
//! for every trace, index-bit budget, and worker count,
//! `streamed::level_profiles_parallel` must return *exactly* the profiles
//! of the serial fold — same depths, same histograms, byte for byte. The
//! chunking is a pure work-partitioning change (snapshot-resumed replays
//! plus an additive histogram merge); any divergence is a bug, not drift.
//!
//! Coverage: all 24 paper kernel traces at full size and 1/2/4/8 workers
//! (release-mode CI job; `#[ignore]`d here because the big data traces
//! take minutes per fold without optimizations), a 96-trace seeded random
//! sweep with randomized worker counts, and the chunk-boundary edge cases:
//! compaction-dense traces (boundaries landing mid-compaction-cycle),
//! weight concentrated in one chunk, a single-reference trace, an
//! all-recurrences trace with zero span weight, and more workers than
//! references.

use std::num::NonZeroUsize;

use cachedse::core::streamed;
use cachedse::trace::rng::SplitMix64;
use cachedse::trace::strip::StrippedTrace;
use cachedse::trace::{Address, Record, Trace};

fn workers(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("nonzero worker count")
}

fn assert_identical(trace: &Trace, max_bits: u32, worker_counts: &[usize], what: &str) {
    let stripped = StrippedTrace::from_trace(trace);
    let serial = streamed::level_profiles(&stripped, max_bits);
    for &w in worker_counts {
        let parallel = streamed::level_profiles_parallel(&stripped, max_bits, workers(w));
        assert_eq!(
            serial, parallel,
            "{what}: {w}-worker fold diverged from serial at max_bits {max_bits}"
        );
    }
}

/// Every one of the paper's 24 benchmark traces (12 kernels × data+instr)
/// at full published size, serial vs 1/2/4/8 workers.
///
/// Ignored in the default (debug) test run: the conflict-heavy data traces
/// take minutes per fold without optimizations. The CI offline job runs it
/// in release mode via `--include-ignored`.
#[test]
#[ignore = "full-size sweep; run in release (CI does, via --include-ignored)"]
fn all_24_kernel_traces_are_byte_identical() {
    for kernel in cachedse::workloads::all() {
        let run = kernel.capture();
        for (side, trace) in [("data", &run.data), ("instr", &run.instr)] {
            let bits = trace.address_bits();
            assert_identical(trace, bits, &[1, 2, 4, 8], &format!("{}.{side}", run.name));
        }
    }
}

/// 96 seeded random traces across address-space shapes and budgets, each
/// checked at a randomized worker count (2..=8).
#[test]
fn random_sweep_with_random_worker_counts_is_byte_identical() {
    let mut rng = SplitMix64::seed_from_u64(0x5742_EA13);
    for round in 0..96 {
        let addr_space = 1u32 << rng.gen_range(2u32..10);
        let len = rng.gen_range(1usize..400);
        let trace: Trace = (0..len)
            .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
            .collect();
        let max_bits = rng.gen_range(0u32..12);
        let w = rng.gen_range(2usize..9);
        assert_identical(&trace, max_bits, &[w], &format!("random trace #{round}"));
    }
}

/// A compaction-dense trace: a small working set keeps the compaction
/// trigger (`dead > live/256 + 8`) firing every handful of recurrences, so
/// with many chunks some boundaries necessarily land mid-cycle — right
/// after tombstones accumulate, before the next compaction would fire.
/// Snapshot capture force-compacts; the bytes must not care.
#[test]
fn compaction_dense_trace_is_byte_identical() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE_DEAD);
    let trace: Trace = (0..2_000)
        .map(|_| Record::read(Address::new(rng.gen_range(0u32..64))))
        .collect();
    assert_identical(&trace, 6, &[2, 3, 7, 8], "compaction-dense");
}

/// All conflict weight concentrated at the front (a burst of recurrences,
/// then a long cold tail): the weighted cut collapses most quantiles into
/// the first buckets and the partition degenerates toward one chunk.
#[test]
fn front_loaded_weight_is_byte_identical() {
    let mut records: Vec<Record> = Vec::new();
    for round in 0..40u32 {
        for a in 0..8u32 {
            records.push(Record::read(Address::new(a + (round % 2))));
        }
    }
    // Cold tail: addresses never seen again.
    for a in 0..1_500u32 {
        records.push(Record::read(Address::new(0x1_0000 + a)));
    }
    let trace: Trace = records.into_iter().collect();
    assert_identical(&trace, 8, &[2, 4, 8], "front-loaded weight");
}

/// A single reference: the parallel entry point must take the serial
/// fallback (trace too short to chunk) and still agree.
#[test]
fn single_reference_is_byte_identical() {
    let trace: Trace = [Record::read(Address::new(42))].into_iter().collect();
    assert_identical(&trace, 8, &[2, 4, 8], "single reference");
}

/// One address repeated: every access after the first is a recurrence with
/// an *empty* conflict set, so the total span weight is zero and the
/// weighted partition collapses to one chunk.
#[test]
fn all_same_address_is_byte_identical() {
    let trace: Trace = (0..300).map(|_| Record::read(Address::new(7))).collect();
    assert_identical(&trace, 5, &[2, 4, 8], "all-same-address");
}

/// Far more workers than distinct references (and than could ever be
/// chunked usefully): the pool must clamp, not wedge.
#[test]
fn more_workers_than_references_is_byte_identical() {
    let trace: Trace = [3u32, 1, 3, 2, 1, 3]
        .into_iter()
        .map(|a| Record::read(Address::new(a)))
        .collect();
    assert_identical(&trace, 4, &[8, 16], "more workers than refs");
}

/// Addresses that agree on their low 8 bits: every level up to 8 maps the
/// whole working set onto one row — the widest conflict sets per
/// recurrence, stressing the weighted cut and the per-chunk fold alike.
#[test]
fn all_same_row_is_byte_identical() {
    let trace: Trace = (0..200u32)
        .map(|i| Record::read(Address::new((i % 32) << 8)))
        .collect();
    for max_bits in [4, 8] {
        assert_identical(&trace, max_bits, &[2, 4, 8], "all-same-row");
    }
}
