//! Exhaustive model exploration of the serve worker pool.
//!
//! The scenario the ISSUE pins down: two workers, three jobs, an admission
//! queue of depth one. Every lock/condvar/atomic interaction of the pool
//! goes through `cachedse-sync`, so under `--cfg cachedse_model` the
//! scheduler can enumerate the interleavings and prove the pool free of
//! deadlock, lost wakeups, and data races — with the functional assertions
//! (all jobs complete, exactly one shared analysis) holding on *every*
//! schedule, not just the ones the OS happens to produce.
//!
//! Compiled only under `RUSTFLAGS="--cfg cachedse_model"`; the CI
//! `model-check` job runs this suite.
#![cfg(cachedse_model)]

use cachedse_core::MissBudget;
use cachedse_serve::{JobSpec, PatternSpec, Service, ServiceConfig, TraceSource};
use cachedse_sync::model::{explore, Mode, ModelConfig};

fn tiny_spec(id: &str, budget: u64) -> JobSpec {
    JobSpec {
        id: Some(id.to_owned()),
        trace: TraceSource::Pattern(PatternSpec::Loop {
            base: 0,
            len: 8,
            iterations: 2,
        }),
        budget: MissBudget::Absolute(budget),
        max_index_bits: None,
        line_bits: 0,
        timeout_ms: None,
    }
}

/// Two workers × three jobs × queue depth one, with the invariants
/// asserted inside the explored closure so a violating schedule fails as
/// a Panic violation even if it would not deadlock.
fn pool_scenario() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 1,
        cache_capacity: 4,
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = (0u64..3)
        .map(|i| {
            service
                .submit_blocking(tiny_spec(&format!("j{i}"), i))
                .expect("blocking submission cannot be rejected before shutdown")
        })
        .collect();
    for id in ids {
        let (_, outcome) = service.wait(id);
        outcome.expect("tiny loop job succeeds");
    }
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 3, "every submission admitted");
    assert_eq!(stats.completed, 3, "every job completed");
    assert_eq!(stats.rejected, 0, "blocking admission never rejects");
    assert_eq!(stats.cache_misses, 1, "one shared trace, one analysis");
    assert_eq!(stats.cache_hits, 2, "the other two jobs reuse the entry");
}

#[test]
fn serve_pool_is_clean_under_exhaustive_bound_1() {
    let out = explore(
        &ModelConfig {
            preemption_bound: Some(1),
            max_executions: 100_000,
            mode: Mode::Exhaustive,
        },
        pool_scenario,
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "serve pool violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert!(out.complete, "exploration must finish within the cap");
    assert!(
        out.executions > 1_000,
        "a 3-thread pool with a depth-1 queue has many interleavings, got {}",
        out.executions
    );
}

#[test]
fn serve_pool_is_clean_under_deep_seeded_walks() {
    // Random walks with no preemption bound reach interleavings the
    // bounded exhaustive pass prunes; the seed keeps CI reproducible.
    let out = explore(
        &ModelConfig {
            preemption_bound: None,
            max_executions: 10_000,
            mode: Mode::Walks {
                count: 200,
                seed: 0xCAC4E,
            },
        },
        pool_scenario,
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "serve pool violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert_eq!(out.executions, 200);
}

#[test]
fn nonblocking_saturation_is_clean_and_rejects_consistently() {
    // Rejecting admission at queue depth 1 with a single worker: however
    // the schedules fall, accepted + rejected must account for every
    // submission and all accepted jobs must complete.
    let out = explore(
        &ModelConfig {
            preemption_bound: Some(1),
            max_executions: 100_000,
            mode: Mode::Exhaustive,
        },
        || {
            let service = Service::start(ServiceConfig {
                workers: 1,
                queue_depth: 1,
                cache_capacity: 4,
                ..ServiceConfig::default()
            });
            let mut admitted = Vec::new();
            let mut rejected = 0u64;
            for i in 0u64..3 {
                match service.submit(tiny_spec(&format!("j{i}"), i)) {
                    Ok(id) => admitted.push(id),
                    Err(cachedse_serve::JobError::QueueFull { depth }) => {
                        assert_eq!(depth, 1);
                        rejected += 1;
                    }
                    Err(other) => panic!("unexpected admission error: {other:?}"),
                }
            }
            let accepted = admitted.len() as u64;
            for id in admitted {
                let (_, outcome) = service.wait(id);
                outcome.expect("admitted job completes");
            }
            let stats = service.shutdown();
            assert_eq!(stats.accepted, accepted);
            assert_eq!(stats.rejected, rejected);
            assert_eq!(stats.completed, accepted);
            assert_eq!(accepted + rejected, 3, "every submission accounted for");
        },
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "saturated pool violated an invariant: {}",
        out.violation.unwrap()
    );
    assert!(out.complete);
}
