//! Integration of the cost models with the analytical explorer: selections
//! are consistent with simulation-derived costs, and the verification layer
//! catches deliberately wrong claims.

use cachedse::core::{verify, DesignSpaceExplorer, MissBudget};
use cachedse::cost::{select, CacheGeometry, CostModel};
use cachedse::sim::{simulate, CacheConfig};
use cachedse::trace::generate;
use cachedse::workloads::{engine::Engine as EngineKernel, Kernel};

#[test]
fn analytic_costs_equal_simulated_costs() {
    let run = EngineKernel { ticks: 500 }.capture();
    let model = CostModel::default_180nm();
    let exploration = DesignSpaceExplorer::new(&run.data)
        .prepare()
        .expect("non-empty");
    let ranked =
        select::rank_within_budget(&exploration, MissBudget::FractionOfMax(0.15), 0, &model)
            .expect("valid budget");
    for p in ranked {
        let config = CacheConfig::lru(p.point.depth, p.point.associativity).expect("valid");
        let stats = simulate(&run.data, &config);
        let simulated = model.evaluate_stats(&CacheGeometry::from(&config), &stats);
        assert_eq!(p.report, simulated, "analytic and simulated costs diverge");
    }
}

#[test]
fn energy_optimal_is_actually_minimal_among_candidates() {
    let trace = generate::working_set_phases(5, 400, 40, 31);
    let model = CostModel::default_180nm();
    let exploration = DesignSpaceExplorer::new(&trace)
        .prepare()
        .expect("non-empty");
    let budget = MissBudget::Absolute(50);
    let best = select::energy_optimal(&exploration, budget, 0, &model).expect("valid");
    for p in select::rank_within_budget(&exploration, budget, 0, &model).expect("valid") {
        assert!(best.report.dynamic_nj <= p.report.dynamic_nj + 1e-9);
    }
}

#[test]
fn verification_rejects_claims_about_a_different_trace() {
    // Explore trace A, then try to pass the result off as valid for a far
    // more conflict-heavy trace B: the replay must catch it.
    let gentle = generate::loop_pattern(0, 32, 40);
    let hostile = generate::strided(0, 64, 64, 60); // 64 addresses sharing rows
    let result = DesignSpaceExplorer::new(&gentle)
        .explore(MissBudget::Absolute(0))
        .expect("non-empty");
    let outcome = verify::check_result(&hostile, &result);
    assert!(outcome.is_err(), "mismatched trace must fail verification");
}

#[test]
fn line_sweep_agrees_with_direct_simulation_at_each_line_size() {
    let run = EngineKernel { ticks: 300 }.capture();
    let model = CostModel::default_180nm();
    for p in select::line_size_sweep(&run.data, 2, &model).expect("non-empty") {
        let coarse = run.data.block_aligned(p.line_bits);
        let config = CacheConfig::builder()
            .depth(p.point.depth)
            .associativity(p.point.associativity)
            .build()
            .expect("valid");
        let stats = simulate(&coarse, &config);
        assert_eq!(
            p.avoidable_misses,
            stats.avoidable_misses(),
            "line {}",
            p.line_bits
        );
    }
}
