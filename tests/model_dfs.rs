//! Model exploration of the parallel depth-first engine's work split.
//!
//! The parallel engine parks subtraces on a shared LPT-sorted work list
//! and lets scoped workers claim them through an atomic cursor; its whole
//! correctness claim is that the result is byte-identical to the serial
//! engine on **every** interleaving. Under `--cfg cachedse_model` the
//! scheduler enumerates the cursor/spawn/join interleavings of a
//! two-worker split and the equality is asserted inside the explored
//! closure, so any schedule-dependent divergence surfaces as a violation.
//!
//! Compiled only under `RUSTFLAGS="--cfg cachedse_model"`; the CI
//! `model-check` job runs this suite.
#![cfg(cachedse_model)]

use cachedse_core::{prepare_stripped, Engine, MissBudget};
use cachedse_sync::model::{explore, Mode, ModelConfig};
use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;

#[test]
fn two_worker_split_matches_serial_on_every_schedule() {
    // Just past the 2048-reference parking threshold, so the gather
    // prefix parks two work items and both workers genuinely contend on
    // the cursor — while each explored execution stays cheap enough that
    // the bound-2 space finishes in CI time.
    let trace = generate::working_set_phases(4, 4096, 96, 17);
    let stripped = StrippedTrace::from_trace(&trace);
    let serial = prepare_stripped(&stripped, None, Engine::DepthFirst, None)
        .expect("non-empty trace explores");

    let out = explore(
        &ModelConfig {
            preemption_bound: Some(2),
            max_executions: 100_000,
            mode: Mode::Exhaustive,
        },
        || {
            let threads = std::num::NonZeroUsize::new(2);
            let parallel = prepare_stripped(&stripped, None, Engine::DepthFirstParallel, threads)
                .expect("non-empty trace explores");
            let budget = MissBudget::FractionOfMax(0.10);
            assert_eq!(
                parallel.result(budget).expect("valid budget"),
                serial.result(budget).expect("valid budget"),
                "parallel split must be schedule-independent"
            );
        },
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "parallel engine violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert!(out.complete, "bound-2 cursor space must be enumerable");
    assert!(
        out.executions > 10,
        "two workers over a shared cursor have many interleavings, got {}",
        out.executions
    );
}
