//! Model exploration of the store tier's locking: concurrent load and
//! evict on a store-backed [`ArtifactCache`], and directly on the
//! [`DiskStore`] index lock. Every lock in the path goes through
//! `cachedse-sync`, so under `--cfg cachedse_model` the scheduler
//! enumerates interleavings and proves the tier free of deadlock and lost
//! wakeups — with the functional invariant (a returned bundle is always
//! the bundle that was stored, whatever the schedule) asserted on every
//! execution.
//!
//! Compiled only under `RUSTFLAGS="--cfg cachedse_model"`; the CI
//! `model-check` job runs this suite.
#![cfg(cachedse_model)]

use std::sync::Arc;

use cachedse_store::{
    ArtifactCache, ArtifactKey, ArtifactStore, DiskStore, MemoryStore, TraceArtifacts,
};
use cachedse_sync::model::{explore, Mode, ModelConfig};
use cachedse_sync::thread;
use cachedse_trace::generate;

fn tiny_artifacts() -> (ArtifactKey, TraceArtifacts) {
    let trace = generate::loop_pattern(0, 8, 2);
    let key = ArtifactKey::of(&trace, trace.address_bits());
    let artifacts = TraceArtifacts::build(&trace, key.max_index_bits).unwrap();
    (key, artifacts)
}

/// One loader racing one evictor over a warm store-backed cache: the
/// loader must observe either nothing or exactly the stored bundle.
#[test]
fn concurrent_load_and_evict_are_clean_under_exhaustive_bound_1() {
    let (key, artifacts) = tiny_artifacts();
    let out = explore(
        &ModelConfig {
            preemption_bound: Some(1),
            max_executions: 100_000,
            mode: Mode::Exhaustive,
        },
        || {
            let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
            store.save(&key, &artifacts).unwrap();
            let cache = Arc::new(ArtifactCache::with_store(2, Arc::clone(&store)));
            let loader = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.get(&key))
            };
            let evictor = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.evict(&key))
            };
            let loaded = loader.join().expect("loader");
            evictor.join().expect("evictor");
            if let Some((bundle, _)) = loaded {
                assert_eq!(*bundle, artifacts, "loader observed a torn bundle");
            }
        },
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "store tier violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert!(out.complete, "exploration must finish within the cap");
}

/// Two builders racing for the same key over an empty store-backed cache,
/// with an evictor in the middle: both must come back with the same
/// answer and the store must never serve a half-written entry.
#[test]
fn concurrent_builders_with_eviction_agree_on_the_answer() {
    let (key, artifacts) = tiny_artifacts();
    let out = explore(
        &ModelConfig {
            preemption_bound: None,
            max_executions: 10_000,
            mode: Mode::Walks {
                count: 100,
                seed: 0x57_0BE,
            },
        },
        || {
            let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
            let cache = Arc::new(ArtifactCache::with_store(2, Arc::clone(&store)));
            let build = |cache: Arc<ArtifactCache>| {
                thread::spawn(move || {
                    let trace = generate::loop_pattern(0, 8, 2);
                    let (bundle, _) = cache
                        .get_or_build(key, || {
                            TraceArtifacts::build(&trace, key.max_index_bits)
                                .map_err(|e| e.to_string())
                        })
                        .expect("build");
                    bundle
                })
            };
            let first = build(Arc::clone(&cache));
            let evictor = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.evict(&key))
            };
            let second = build(Arc::clone(&cache));
            let a = first.join().expect("first builder");
            evictor.join().expect("evictor");
            let b = second.join().expect("second builder");
            assert_eq!(*a, artifacts, "first builder diverged");
            assert_eq!(*b, artifacts, "second builder diverged");
        },
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "builder/evictor race violated an invariant: {}",
        out.violation.unwrap()
    );
    assert_eq!(out.executions, 100);
}

/// The disk store's index lock under the same load/evict race, with real
/// files underneath: seeded walks keep the I/O bounded while still
/// exploring schedules the OS never produces.
#[test]
fn disk_store_index_lock_is_clean_under_seeded_walks() {
    let (key, artifacts) = tiny_artifacts();
    let dir = std::env::temp_dir().join(format!("cachedse-model-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = explore(
        &ModelConfig {
            preemption_bound: None,
            max_executions: 10_000,
            mode: Mode::Walks {
                count: 50,
                seed: 0xD15C,
            },
        },
        || {
            let store = Arc::new(DiskStore::open(&dir).expect("open"));
            store.save(&key, &artifacts).expect("save");
            let loader = {
                let store = Arc::clone(&store);
                thread::spawn(move || store.load(&key))
            };
            let remover = {
                let store = Arc::clone(&store);
                thread::spawn(move || store.remove(&key))
            };
            let loaded = loader.join().expect("loader");
            remover.join().expect("remover").expect("remove");
            if let Ok(Some(bundle)) = loaded {
                assert_eq!(bundle, artifacts, "disk loader observed a torn bundle");
            }
        },
    )
    .expect("model build");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        out.violation.is_none(),
        "disk store violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert_eq!(out.executions, 50);
}
