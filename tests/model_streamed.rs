//! Model exploration of the chunked parallel streamed fold's fan-out/merge.
//!
//! The parallel streamed engine snapshots the recency replay at chunk
//! boundaries, lets scoped workers claim chunks through an atomic cursor,
//! and sums their private histograms after the join; its whole correctness
//! claim is that the result is byte-identical to the serial fold on
//! **every** interleaving. Under `--cfg cachedse_model` the scheduler
//! enumerates the cursor/spawn/join interleavings of a two-worker pool —
//! exhaustively at preemption bound 2, plus a seeded random walk deeper
//! into the schedule space — and the equality is asserted inside the
//! explored closure, so any schedule-dependent divergence surfaces as a
//! violation.
//!
//! Compiled only under `RUSTFLAGS="--cfg cachedse_model"`; the CI
//! `model-check` job runs this suite.
#![cfg(cachedse_model)]

use cachedse_core::streamed;
use cachedse_sync::model::{explore, Mode, ModelConfig};
use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;

#[test]
fn two_worker_fold_matches_serial_on_every_schedule() {
    // Dense enough that the weighted pre-scan cuts real chunks (the phases
    // keep recurrences flowing), small enough that each explored execution
    // stays cheap across the whole bound-2 schedule space.
    let trace = generate::working_set_phases(4, 4096, 96, 17);
    let stripped = StrippedTrace::from_trace(&trace);
    let serial = streamed::level_profiles(&stripped, 6);

    let out = explore(
        &ModelConfig {
            preemption_bound: Some(2),
            max_executions: 100_000,
            mode: Mode::Exhaustive,
        },
        || {
            let threads = std::num::NonZeroUsize::new(2).expect("nonzero");
            let parallel = streamed::level_profiles_parallel(&stripped, 6, threads);
            assert_eq!(
                parallel, serial,
                "chunked fold must be schedule-independent"
            );
        },
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "parallel streamed fold violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert!(out.complete, "bound-2 cursor space must be enumerable");
    assert!(
        out.executions > 10,
        "two workers over a shared cursor have many interleavings, got {}",
        out.executions
    );
}

#[test]
fn seeded_walks_explore_deeper_schedules() {
    let trace = generate::working_set_phases(4, 4096, 96, 17);
    let stripped = StrippedTrace::from_trace(&trace);
    let serial = streamed::level_profiles(&stripped, 6);

    let out = explore(
        &ModelConfig {
            preemption_bound: None,
            max_executions: 100_000,
            mode: Mode::Walks {
                count: 200,
                seed: 0x57EA_4ED5,
            },
        },
        || {
            let threads = std::num::NonZeroUsize::new(3).expect("nonzero");
            let parallel = streamed::level_profiles_parallel(&stripped, 6, threads);
            assert_eq!(
                parallel, serial,
                "chunked fold must be schedule-independent"
            );
        },
    )
    .expect("model build");
    assert!(
        out.violation.is_none(),
        "parallel streamed fold violated a concurrency invariant: {}",
        out.violation.unwrap()
    );
    assert!(
        out.executions >= 200,
        "every requested walk must run, got {}",
        out.executions
    );
}
