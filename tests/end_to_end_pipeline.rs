//! End-to-end pipeline: capture a workload, serialize its trace to the
//! Dinero text format, read it back, explore, and verify — the full path a
//! downstream user takes through the public API.

use cachedse::core::{verify, DesignSpaceExplorer, MissBudget};
use cachedse::trace::io::{read_din, write_din};
use cachedse::workloads::{pocsag::Pocsag, Kernel};

#[test]
fn capture_serialize_parse_explore_verify() {
    let run = Pocsag { batches: 12 }.capture();

    let mut bytes = Vec::new();
    write_din(&mut bytes, &run.data).expect("in-memory write cannot fail");
    let parsed = read_din(bytes.as_slice()).expect("own output parses");
    assert_eq!(parsed, run.data);

    let result = DesignSpaceExplorer::new(&parsed)
        .explore(MissBudget::FractionOfMax(0.10))
        .expect("non-empty trace");
    assert!(!result.pairs().is_empty());
    verify::check_result(&parsed, &result).expect("analytical result verifies");

    // Exploring the parsed copy gives the same result as the original.
    let original = DesignSpaceExplorer::new(&run.data)
        .explore(MissBudget::FractionOfMax(0.10))
        .expect("non-empty trace");
    assert_eq!(result, original);
}

#[test]
fn hierarchy_l1_agrees_with_analytical_prediction() {
    use cachedse::core::DesignSpaceExplorer;
    use cachedse::sim::hierarchy::Hierarchy;
    use cachedse::sim::CacheConfig;

    // Instruction traces are read-only, so the L1 of a hierarchy behaves
    // exactly like a standalone cache — and must match the analytical
    // prediction for its geometry.
    let run = Pocsag { batches: 10 }.capture();
    let exploration = DesignSpaceExplorer::new(&run.instr)
        .prepare()
        .expect("non-empty");
    for (depth, assoc) in [(16u32, 1u32), (64, 2), (256, 1)] {
        let mut h = Hierarchy::new(
            CacheConfig::lru(depth, assoc).expect("valid"),
            CacheConfig::lru(4096, 4).expect("valid"),
        )
        .expect("compatible levels");
        h.run(&run.instr);
        assert_eq!(
            h.l1().avoidable_misses(),
            exploration.misses_at(depth, assoc).expect("explored depth"),
            "depth {depth}, {assoc}-way"
        );
    }
}

#[test]
fn parallel_engine_full_pipeline() {
    use cachedse::core::{verify, DesignSpaceExplorer, Engine, MissBudget};
    let run = Pocsag { batches: 16 }.capture();
    let serial = DesignSpaceExplorer::new(&run.data)
        .explore(MissBudget::FractionOfMax(0.10))
        .expect("non-empty");
    let parallel = DesignSpaceExplorer::new(&run.data)
        .engine(Engine::DepthFirstParallel)
        .explore(MissBudget::FractionOfMax(0.10))
        .expect("non-empty");
    assert_eq!(serial, parallel);
    verify::check_result(&run.data, &parallel).expect("verified");
}

#[test]
fn line_size_coarsening_composes() {
    let run = Pocsag { batches: 8 }.capture();
    let coarse = run.data.block_aligned(2); // 4-word lines
    let result = DesignSpaceExplorer::new(&coarse)
        .explore(MissBudget::Absolute(5))
        .expect("non-empty trace");
    verify::check_result(&coarse, &result).expect("verifies on the block trace");
}
