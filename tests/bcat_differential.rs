//! Differential oracle for the radix BCAT builder.
//!
//! `Bcat::from_stripped` / `Bcat::build` (the stable-partition permutation
//! arena, see DESIGN.md §13) must be *exactly* equal — same nodes, same
//! member order, same flat-arena representation — to `Bcat::build_naive`,
//! the paper's Algorithm 1 with per-node zero/one-set intersections.
//! Because a stable partition of the ascending identity permutation keeps
//! every node slice ascending, the naive builder's bitset-order packing
//! produces the *same* arena bytes, so the comparison is full structural
//! equality (`PartialEq` over arena + nodes + level offsets), not just
//! per-level set equality.
//!
//! Three corpora exercise it:
//!
//! 1. every bundled kernel (both captured sides) at small parameters, at
//!    the trace's natural bit width and a clamped budget;
//! 2. a seeded SplitMix64 sweep of synthetic traces across uniform,
//!    walker, hot/cold, and modular shapes with varying bit budgets;
//! 3. arena edge cases: the empty trace, a single reference, a bit budget
//!    exceeding the address width, and all-same-row traces (every split
//!    sends the entire parent into one child).
//!
//! A final oracle re-runs the *old* postlude — Algorithm 3 with
//! `DenseBitSet` membership tests against the naive tree — and checks the
//! rewritten row-array postlude reproduces its profiles bit for bit, tying
//! exploration results to the published algorithms end to end.

use cachedse::bitset::DenseBitSet;
use cachedse::core::{postlude, Bcat, Mrct, ZeroOneSets};
use cachedse::sim::onepass::DepthProfile;
use cachedse::trace::strip::{RefId, StrippedTrace};
use cachedse::trace::{Address, Record, Trace};
use cachedse::workloads::{
    adpcm::Adpcm, bcnt::Bcnt, blit::Blit, compress::Compress, crc::Crc, des::Des, engine::Engine,
    fir::Fir, g3fax::G3fax, pocsag::Pocsag, qurt::Qurt, ucbqsort::Ucbqsort, Kernel, KernelRun,
};

/// Small-parameter instances of all twelve kernels (mirrors the corpora in
/// `verify_workloads.rs` / `mrct_differential.rs`).
fn small_runs() -> Vec<KernelRun> {
    vec![
        Adpcm { samples: 300 }.capture(),
        Bcnt {
            buffer_len: 256,
            passes: 2,
        }
        .capture(),
        Blit {
            row_words: 8,
            rows: 24,
            ops: 6,
        }
        .capture(),
        Compress { input_len: 600 }.capture(),
        Crc {
            message_len: 400,
            passes: 2,
        }
        .capture(),
        Des { blocks: 20 }.capture(),
        Engine { ticks: 250 }.capture(),
        Fir {
            taps: 10,
            samples: 400,
        }
        .capture(),
        G3fax { lines: 12 }.capture(),
        Pocsag { batches: 6 }.capture(),
        Qurt { equations: 100 }.capture(),
        Ucbqsort { elements: 300 }.capture(),
    ]
}

fn assert_builders_agree(label: &str, trace: &Trace, bits: u32) {
    let stripped = StrippedTrace::from_trace(trace);
    let zo = ZeroOneSets::from_stripped(&stripped);
    let radix = Bcat::from_stripped(&stripped, bits);
    let naive = Bcat::build_naive(&zo, bits);
    assert_eq!(
        radix, naive,
        "{label} (bits = {bits}): radix builder diverged from Algorithm 1"
    );
    // The zero/one-set entry point must land on the identical tree too.
    assert_eq!(
        Bcat::build(&zo, bits),
        radix,
        "{label} (bits = {bits}): build(zo) diverged from from_stripped"
    );
}

#[test]
fn all_kernels_builders_agree() {
    for run in small_runs() {
        for (side, trace) in [("data", &run.data), ("instr", &run.instr)] {
            let bits = trace.address_bits();
            assert_builders_agree(&format!("{}.{side}", run.name), trace, bits);
            assert_builders_agree(&format!("{}.{side}", run.name), trace, bits.min(6));
        }
    }
}

/// SplitMix64: tiny, seedable, and good enough to scatter addresses.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A randomized trace whose shape is picked by `rng`: address-space width,
/// length, and access pattern all vary, so the sweep covers skewed
/// partitions, empty siblings, and early-frozen leaves alike.
fn random_trace(rng: &mut SplitMix64) -> Trace {
    let space = 1u64 << (1 + rng.below(9)); // 2 .. 1024 distinct addresses
    let len = 8 + rng.below(900);
    let pattern = rng.below(4);
    let mut trace = Trace::new();
    let mut walker = rng.below(space);
    for t in 0..len {
        let addr = match pattern {
            0 => rng.below(space),
            1 => {
                walker = if rng.below(16) == 0 {
                    rng.below(space)
                } else {
                    (walker + 1) % space
                };
                walker
            }
            2 => {
                if rng.below(10) < 8 {
                    rng.below(8.min(space))
                } else {
                    rng.below(space)
                }
            }
            _ => t % (1 + space / 2),
        };
        trace.push(Record::read(Address::new(
            u32::try_from(addr).expect("address fits u32"),
        )));
    }
    trace
}

#[test]
fn seeded_random_sweep_agrees() {
    let mut rng = SplitMix64(0x0BCA_7BCA_7BCA_7001);
    for case in 0..96 {
        let trace = random_trace(&mut rng);
        let bits = u32::try_from(rng.below(12)).expect("small");
        assert_builders_agree(&format!("random[{case}]"), &trace, bits);
    }
}

/// The empty trace: a lone empty root, no materialized splits, and both
/// builders produce that same degenerate tree.
#[test]
fn empty_trace() {
    let stripped = StrippedTrace::from_trace(&Trace::new());
    let bcat = Bcat::from_stripped(&stripped, 8);
    assert_eq!(bcat.unique_len(), 0);
    assert_eq!(bcat.arena_len(), 0);
    assert_eq!(bcat.levels(), 1);
    assert!(bcat.root().is_leaf());
    let zo = ZeroOneSets::from_stripped(&stripped);
    assert_eq!(bcat, Bcat::build_naive(&zo, 8));
}

/// A single unique reference: the root is frozen immediately (cardinality
/// < 2), the arena holds exactly one id, and no level beyond 0 exists.
#[test]
fn single_reference_trace() {
    let trace: Trace = (0..40).map(|_| Record::read(Address::new(7))).collect();
    let stripped = StrippedTrace::from_trace(&trace);
    let bcat = Bcat::from_stripped(&stripped, 8);
    assert_eq!(bcat.unique_len(), 1);
    assert_eq!(bcat.arena_len(), 1);
    assert_eq!(bcat.levels(), 1);
    assert!(bcat.root().is_leaf());
    assert_eq!(bcat.root().refs_slice(), &[0]);
    let zo = ZeroOneSets::from_stripped(&stripped);
    assert_eq!(bcat, Bcat::build_naive(&zo, 8));
}

/// A bit budget far beyond the address width: splitting stops once every
/// address bit is consumed, and the trees still match node for node.
#[test]
fn budget_exceeds_address_bits() {
    let trace: Trace = [0u32, 1, 2, 3, 0, 1, 2, 3]
        .into_iter()
        .map(|a| Record::read(Address::new(a)))
        .collect();
    let stripped = StrippedTrace::from_trace(&trace);
    let bcat = Bcat::from_stripped(&stripped, 31);
    // Two address bits suffice to isolate all four references.
    assert!(bcat.levels() <= 3);
    for node in bcat.nodes_at(bcat.levels() - 1) {
        assert!(node.refs_slice().len() <= 1);
    }
    let zo = ZeroOneSets::from_stripped(&stripped);
    assert_eq!(bcat, Bcat::build_naive(&zo, 31));
}

/// Addresses congruent modulo a power of two: every split sends the whole
/// parent into one child, leaving an empty sibling at each level — the
/// most lopsided partition the arena layout must represent.
#[test]
fn all_same_row_trace() {
    let trace: Trace = (0..8u32)
        .map(|i| Record::read(Address::new(i << 4)))
        .collect();
    let stripped = StrippedTrace::from_trace(&trace);
    let bcat = Bcat::from_stripped(&stripped, 4);
    // Levels 1..=4 select within the low four bits, which are all zero:
    // one node holds every reference, its sibling is empty.
    for level in 1..=4 {
        let sizes: Vec<usize> = bcat.nodes_at(level).map(|n| n.refs_slice().len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8, "level {level}");
        assert_eq!(sizes.iter().filter(|&&s| s > 0).count(), 1, "level {level}");
    }
    let zo = ZeroOneSets::from_stripped(&stripped);
    assert_eq!(bcat, Bcat::build_naive(&zo, 4));
}

/// The postlude as it was before the rewrite: resident sets as
/// `DenseBitSet`s over the *naive* tree, membership via `contains`. The
/// row-array postlude over the radix tree must reproduce its profiles
/// exactly, so end-to-end exploration results are pinned to the published
/// Algorithms 1 + 3.
fn naive_level_profiles(
    bcat: &Bcat,
    mrct: &Mrct,
    stripped: &StrippedTrace,
    max_index_bits: u32,
) -> Vec<DepthProfile> {
    let total = stripped.total_len() as u64;
    let unique = stripped.unique_len() as u64;
    let non_cold = total - unique;
    (0..=max_index_bits)
        .map(|level| {
            let mut histogram: Vec<u64> = Vec::new();
            for node in bcat.nodes_at(level) {
                if node.refs_slice().len() < 2 {
                    continue;
                }
                let resident: DenseBitSet = node.refs_slice().iter().map(|&r| r as usize).collect();
                for &id in node.refs_slice() {
                    for conflict in mrct.conflict_sets(RefId::new(id)) {
                        let d = conflict
                            .iter()
                            .filter(|&&other| resident.contains(other as usize))
                            .count();
                        if d > 0 {
                            if histogram.len() <= d {
                                histogram.resize(d + 1, 0);
                            }
                            histogram[d] += 1;
                        }
                    }
                }
            }
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

#[test]
fn postlude_matches_bitset_membership_oracle_on_kernels() {
    for run in small_runs() {
        for (side, trace) in [("data", &run.data), ("instr", &run.instr)] {
            let bits = trace.address_bits().min(8);
            let stripped = StrippedTrace::from_trace(trace);
            let zo = ZeroOneSets::from_stripped(&stripped);
            let naive = Bcat::build_naive(&zo, bits);
            let radix = Bcat::from_stripped(&stripped, bits);
            let mrct = Mrct::build(&stripped);
            assert_eq!(
                postlude::level_profiles(&radix, &mrct, &stripped, bits),
                naive_level_profiles(&naive, &mrct, &stripped, bits),
                "{}.{side}: row-array postlude diverged from the bitset oracle",
                run.name
            );
        }
    }
}
