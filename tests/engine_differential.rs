//! Differential oracle for the depth-first engines.
//!
//! The scratch-arena serial engine and the size-aware parallel scheduler
//! must produce *byte-identical* per-level conflict-depth profiles to the
//! tree+table reference (`Bcat` + `Mrct` + postlude) — that equality is what
//! lets the serve cache key stay engine-free. Two corpora exercise it:
//!
//! 1. every bundled kernel (both captured sides) at small parameters, and
//! 2. a seeded SplitMix64 sweep of synthetic traces covering degenerate
//!    shapes (single address, all-distinct, heavy reuse, power-of-two strides).
//!
//! Parallel runs are pinned at 1, 2, and 8 workers: the work-splitting
//! threshold is thread-count independent, so every pinning must agree.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

use cachedse::core::{dfs, postlude, Bcat, Mrct};
use cachedse::sim::onepass::DepthProfile;
use cachedse::trace::strip::StrippedTrace;
use cachedse::trace::{Address, Record, Trace};
use cachedse::workloads::{
    adpcm::Adpcm, bcnt::Bcnt, blit::Blit, compress::Compress, crc::Crc, des::Des, engine::Engine,
    fir::Fir, g3fax::G3fax, pocsag::Pocsag, qurt::Qurt, ucbqsort::Ucbqsort, Kernel, KernelRun,
};

/// Small-parameter instances of all twelve kernels (mirrors the simulator
/// oracle corpus in `verify_workloads.rs`).
fn small_runs() -> Vec<KernelRun> {
    vec![
        Adpcm { samples: 300 }.capture(),
        Bcnt {
            buffer_len: 256,
            passes: 2,
        }
        .capture(),
        Blit {
            row_words: 8,
            rows: 24,
            ops: 6,
        }
        .capture(),
        Compress { input_len: 600 }.capture(),
        Crc {
            message_len: 400,
            passes: 2,
        }
        .capture(),
        Des { blocks: 20 }.capture(),
        Engine { ticks: 250 }.capture(),
        Fir {
            taps: 10,
            samples: 400,
        }
        .capture(),
        G3fax { lines: 12 }.capture(),
        Pocsag { batches: 6 }.capture(),
        Qurt { equations: 100 }.capture(),
        Ucbqsort { elements: 300 }.capture(),
    ]
}

/// Golden profiles from the tree+table pipeline.
fn tree_table_profiles(stripped: &StrippedTrace, bits: u32) -> Vec<DepthProfile> {
    let bcat = Bcat::from_stripped(stripped, bits);
    let mrct = Mrct::build(stripped);
    postlude::level_profiles(&bcat, &mrct, stripped, bits)
}

/// One (kernel, trace-kind) oracle: the stripped trace plus its tree+table
/// golden, built exactly once and shared by every engine-variant test.
struct OracleCase {
    label: String,
    stripped: StrippedTrace,
    bits: u32,
    golden: Vec<DepthProfile>,
}

impl OracleCase {
    fn of(label: String, trace: &Trace) -> Self {
        let stripped = StrippedTrace::from_trace(trace);
        let bits = trace.address_bits();
        let golden = tree_table_profiles(&stripped, bits);
        Self {
            label,
            stripped,
            bits,
            golden,
        }
    }
}

/// The 24 kernel oracles (12 kernels × data+instr). The tree+table golden
/// is the expensive part of this suite, so it is built once per
/// (kernel, trace-kind) here and shared across the serial and the
/// {1, 2, 8}-worker comparisons instead of being rebuilt per engine
/// variant.
fn kernel_oracles() -> &'static [OracleCase] {
    static CASES: OnceLock<Vec<OracleCase>> = OnceLock::new();
    CASES.get_or_init(|| {
        small_runs()
            .iter()
            .flat_map(|run| {
                [
                    OracleCase::of(format!("{}.data", run.name), &run.data),
                    OracleCase::of(format!("{}.instr", run.name), &run.instr),
                ]
            })
            .collect()
    })
}

/// Asserts the serial and every pinned-worker parallel engine reproduce a
/// prebuilt golden.
fn assert_engines_match_golden(
    label: &str,
    stripped: &StrippedTrace,
    bits: u32,
    golden: &[DepthProfile],
) {
    let serial = dfs::level_profiles(stripped, bits);
    assert_eq!(
        serial, golden,
        "{label}: serial dfs diverged from tree+table"
    );
    for workers in [1usize, 2, 8] {
        let workers = NonZeroUsize::new(workers).expect("nonzero");
        let parallel = dfs::level_profiles_parallel(stripped, bits, workers);
        assert_eq!(
            parallel, golden,
            "{label}: parallel dfs ({workers} workers) diverged from tree+table"
        );
    }
}

/// Asserts all three engines agree on `trace`, at every pinned worker count.
fn assert_engines_agree(label: &str, trace: &Trace) {
    let case = OracleCase::of(label.to_owned(), trace);
    assert_engines_match_golden(&case.label, &case.stripped, case.bits, &case.golden);
}

#[test]
fn all_kernels_all_engines_agree() {
    for case in kernel_oracles() {
        assert_engines_match_golden(&case.label, &case.stripped, case.bits, &case.golden);
    }
}

/// SplitMix64: tiny, seedable, and good enough to scatter addresses.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A randomized trace whose shape is picked by `rng`: address-space width,
/// length, and access pattern (uniform, strided, or hot/cold mixture) all
/// vary so the sweep covers skewed partitions and deep recursions.
fn random_trace(rng: &mut SplitMix64) -> Trace {
    let space = 1u64 << (2 + rng.below(10)); // 4 .. 4096 distinct lines
    let len = 16 + rng.below(1500);
    let pattern = rng.below(4);
    let mut trace = Trace::new();
    let mut walker = rng.below(space);
    for t in 0..len {
        let addr = match pattern {
            // Uniform random.
            0 => rng.below(space),
            // Strided with occasional random jumps (loop-like reuse).
            1 => {
                walker = if rng.below(16) == 0 {
                    rng.below(space)
                } else {
                    (walker + 1) % space
                };
                walker
            }
            // Hot/cold: 80% of accesses hit an 8-line hot set.
            2 => {
                if rng.below(10) < 8 {
                    rng.below(8.min(space))
                } else {
                    rng.below(space)
                }
            }
            // Repeated sweep over a prefix (deterministic heavy reuse).
            _ => t % (1 + space / 2),
        };
        // Spread across cache lines so index bits are meaningful.
        let addr = u32::try_from(addr << 2).expect("address fits u32");
        trace.push(Record::read(Address::new(addr)));
    }
    trace
}

#[test]
fn seeded_random_sweep_agrees() {
    let mut rng = SplitMix64(0xDA7E_2003_C0FF_EE00);
    for case in 0..64 {
        let trace = random_trace(&mut rng);
        assert_engines_agree(&format!("random[{case}]"), &trace);
    }
}

#[test]
fn degenerate_traces_agree() {
    // Single repeated address.
    let single: Trace = (0..100).map(|_| Record::read(Address::new(64))).collect();
    assert_engines_agree("single-address", &single);

    // All-distinct addresses (no reuse anywhere).
    let distinct: Trace = (0..256u32)
        .map(|t| Record::read(Address::new(t << 2)))
        .collect();
    assert_engines_agree("all-distinct", &distinct);

    // Power-of-two stride: every access lands in the same low-index class.
    let strided: Trace = (0..200u32)
        .map(|t| Record::read(Address::new((t % 16) << 8)))
        .collect();
    assert_engines_agree("pow2-stride", &strided);
}
