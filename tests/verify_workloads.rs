//! Simulator-replay oracle across every bundled workload kernel.
//!
//! For each of the twelve PowerStone-style kernels, both captured sides
//! (data and instruction traces) are explored at several miss budgets and
//! every returned `(depth, associativity)` pair is replayed through the LRU
//! simulator: the configuration must meet the budget and `associativity − 1`
//! must not (the paper's Figure 1a ground truth). This corpus doubles as the
//! seed corpus for `cachedse check`.

use cachedse::core::{verify, DesignSpaceExplorer, MissBudget};
use cachedse::workloads::{
    adpcm::Adpcm, bcnt::Bcnt, blit::Blit, compress::Compress, crc::Crc, des::Des, engine::Engine,
    fir::Fir, g3fax::G3fax, pocsag::Pocsag, qurt::Qurt, ucbqsort::Ucbqsort, Kernel, KernelRun,
};

/// Small-parameter instances of all twelve kernels: enough references to be
/// interesting, small enough that replaying every design point stays fast in
/// debug builds.
fn small_runs() -> Vec<KernelRun> {
    vec![
        Adpcm { samples: 300 }.capture(),
        Bcnt {
            buffer_len: 256,
            passes: 2,
        }
        .capture(),
        Blit {
            row_words: 8,
            rows: 24,
            ops: 6,
        }
        .capture(),
        Compress { input_len: 600 }.capture(),
        Crc {
            message_len: 400,
            passes: 2,
        }
        .capture(),
        Des { blocks: 20 }.capture(),
        Engine { ticks: 250 }.capture(),
        Fir {
            taps: 10,
            samples: 400,
        }
        .capture(),
        G3fax { lines: 12 }.capture(),
        Pocsag { batches: 6 }.capture(),
        Qurt { equations: 100 }.capture(),
        Ucbqsort { elements: 300 }.capture(),
    ]
}

/// Every kernel, both trace sides, three budgets: zero replay discrepancies.
#[test]
fn every_kernel_verifies_against_the_simulator() {
    let runs = small_runs();
    assert_eq!(runs.len(), 12, "one instance per bundled kernel");
    for run in &runs {
        for (side, trace) in [("data", &run.data), ("instr", &run.instr)] {
            let exploration = DesignSpaceExplorer::new(trace)
                .max_index_bits(8)
                .prepare()
                .unwrap_or_else(|e| panic!("{} {side}: {e}", run.name));
            for fraction in [0.02, 0.10, 0.25] {
                let result = exploration
                    .result(MissBudget::FractionOfMax(fraction))
                    .unwrap_or_else(|e| panic!("{} {side} K={fraction}: {e}", run.name));
                let checks = verify::check_result(trace, &result)
                    .unwrap_or_else(|e| panic!("{} {side} K={fraction}: {e}", run.name));
                assert!(!checks.is_empty(), "{} {side}: empty frontier", run.name);
            }
        }
    }
}

/// The exhaustive variant agrees with the fail-fast one: a clean frontier
/// yields zero collected errors.
#[test]
fn exhaustive_checker_collects_nothing_on_clean_frontiers() {
    for run in small_runs().iter().take(3) {
        let result = DesignSpaceExplorer::new(&run.data)
            .max_index_bits(8)
            .explore(MissBudget::FractionOfMax(0.10))
            .unwrap();
        let (checks, errors) = verify::check_result_exhaustive(&run.data, &result);
        assert!(errors.is_empty(), "{}: {errors:?}", run.name);
        assert_eq!(checks.len(), result.pairs().len());
    }
}
