//! Cross-cutting properties of the instrumented workload suite.

use std::collections::HashSet;

use cachedse::trace::stats::TraceStats;
use cachedse::trace::AccessKind;
use cachedse::workloads::{all, fetch::TEXT_BASE, memory::DATA_BASE};

#[test]
fn all_twelve_kernels_produce_both_traces() {
    let kernels = all();
    assert_eq!(kernels.len(), 12);
    for kernel in &kernels {
        let run = kernel.capture();
        assert!(!run.data.is_empty(), "{}: empty data trace", run.name);
        assert!(
            !run.instr.is_empty(),
            "{}: empty instruction trace",
            run.name
        );
        assert!(
            run.data.iter().all(|r| r.kind.is_data()),
            "{}: non-data record in data trace",
            run.name
        );
        assert!(
            run.instr.iter().all(|r| r.kind == AccessKind::InstrFetch),
            "{}: non-fetch record in instruction trace",
            run.name
        );
    }
}

#[test]
fn data_and_text_segments_are_disjoint() {
    for kernel in all() {
        let run = kernel.capture();
        assert!(
            run.data
                .addresses()
                .all(|a| a.raw() >= DATA_BASE && a.raw() < TEXT_BASE),
            "{}: data address outside the data segment",
            run.name
        );
        assert!(
            run.instr.addresses().all(|a| a.raw() >= TEXT_BASE),
            "{}: fetch address below the text segment",
            run.name
        );
    }
}

#[test]
fn captures_are_deterministic_across_calls() {
    for kernel in all() {
        let a = kernel.capture();
        let b = kernel.capture();
        assert_eq!(a.data, b.data, "{}", a.name);
        assert_eq!(a.instr, b.instr, "{}", a.name);
    }
}

#[test]
fn names_are_unique_and_sorted_like_the_paper() {
    let names: Vec<&str> = all().iter().map(|k| k.name()).collect();
    let unique: HashSet<&&str> = names.iter().collect();
    assert_eq!(unique.len(), 12);
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "paper lists benchmarks alphabetically");
}

#[test]
fn instruction_traces_are_loop_dominated() {
    // The defining property of embedded instruction traces: total fetches
    // vastly exceed the static code footprint.
    for kernel in all() {
        let run = kernel.capture();
        let stats = TraceStats::of(&run.instr);
        assert!(
            stats.total > 20 * stats.unique,
            "{}: N = {} vs N' = {}",
            run.name,
            stats.total,
            stats.unique
        );
    }
}

#[test]
fn data_traces_exhibit_reuse() {
    for kernel in all() {
        let run = kernel.capture();
        let stats = TraceStats::of(&run.data);
        assert!(
            stats.total > stats.unique,
            "{}: no reuse at all would make cache exploration moot",
            run.name
        );
        assert!(stats.max_misses > 0, "{}: trivial trace", run.name);
    }
}
