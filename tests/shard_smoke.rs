//! Two-node sharding smoke test: a pair of joined serve nodes must answer
//! the same JSONL batch with results identical to a single node's —
//! byte-identical once the volatile fields (wall-clock micros, cache
//! temperature, the `forwarded` marker) are stripped. Placement is also
//! checked against an independently computed ring: a job is marked
//! `forwarded` exactly when its digest hashes to the other member.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use cachedse_json::Value;
use cachedse_serve::{serve, serve_with, ServiceConfig, ShardOptions};
use cachedse_store::HashRing;
use cachedse_trace::digest::TraceDigest;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Self { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        Value::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

/// Polls until the node accepts connections (its accept loop is up).
fn await_listening(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(addr).is_err() {
        assert!(Instant::now() < deadline, "{addr} never started listening");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn job_line(id: &str, seed: u64) -> String {
    format!(
        concat!(
            "{{\"id\":\"{}\",",
            "\"trace\":{{\"pattern\":\"phases\",\"phases\":3,\"len\":3000,\"ws\":128,\"seed\":{}}},",
            "\"budget\":{{\"misses\":5}}}}"
        ),
        id, seed
    )
}

/// The response minus everything legitimately node-dependent: timing,
/// cache temperature, and the forwarding marker.
fn canonical(response: &Value) -> String {
    let pairs = response.as_object().expect("object response");
    Value::object(
        pairs
            .iter()
            .filter(|(k, _)| k != "micros" && k != "cache" && k != "forwarded")
            .map(|(k, v)| (k.clone(), v.clone())),
    )
    .render()
}

fn digest_of(response: &Value) -> TraceDigest {
    let hex = response
        .get("trace")
        .and_then(|t| t.get("digest"))
        .and_then(Value::as_str)
        .expect("digest in response");
    TraceDigest::from_raw(u64::from_str_radix(hex, 16).expect("hex digest"))
}

#[test]
fn two_joined_nodes_answer_a_batch_identically_to_one_node() {
    const JOBS: u64 = 10;

    // Node A: a fresh single-member ring.
    let listener_a = TcpListener::bind("127.0.0.1:0").expect("bind a");
    let addr_a = listener_a.local_addr().expect("addr a").to_string();
    let config = || ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let shard_a = ShardOptions {
        advertise: addr_a.clone(),
        join: Vec::new(),
    };
    let node_a = {
        let config = config();
        cachedse_sync::thread::spawn(move || {
            serve_with(listener_a, config, Some(shard_a)).expect("node a")
        })
    };
    await_listening(&addr_a);

    // Node B joins through A.
    let listener_b = TcpListener::bind("127.0.0.1:0").expect("bind b");
    let addr_b = listener_b.local_addr().expect("addr b").to_string();
    let shard_b = ShardOptions {
        advertise: addr_b.clone(),
        join: vec![addr_a.clone()],
    };
    let node_b = {
        let config = config();
        cachedse_sync::thread::spawn(move || {
            serve_with(listener_b, config, Some(shard_b)).expect("node b")
        })
    };
    await_listening(&addr_b);

    // Both nodes agree on the two-member ring. The listener backlog makes
    // `await_listening` return before B's join handshake has reached A, so
    // poll A's view until the membership converges.
    let mut client = Client::connect(&addr_a);
    let mut expected = [addr_a.clone(), addr_b.clone()];
    expected.sort_unstable();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.send(r#"{"op":"ring"}"#);
        let ring_a = client.recv();
        let mut members: Vec<String> = ring_a
            .get("members")
            .and_then(Value::as_array)
            .expect("members")
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_owned)
            .collect();
        members.sort_unstable();
        if members == expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "node a ring never converged after join: {members:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The whole batch goes to node A; it forwards what it does not own.
    let mut sharded = Vec::new();
    for seed in 0..JOBS {
        client.send(&job_line(&format!("j{seed}"), seed));
        let response = client.recv();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "job {seed} failed: {}",
            response.render()
        );
        sharded.push(response);
    }

    // Placement check against an independent ring: forwarded iff owned by
    // the other member.
    let ring = HashRing::new([addr_a.clone(), addr_b.clone()]);
    for response in &sharded {
        let owner = ring.owner(digest_of(response)).expect("owner");
        let forwarded = response.get("forwarded").and_then(Value::as_bool) == Some(true);
        assert_eq!(
            forwarded,
            owner != addr_a,
            "placement mismatch for {}",
            response.render()
        );
    }

    // A digest-only replay of every job still answers — wherever the
    // artifacts live on the ring.
    for response in &sharded {
        let id = response.get("id").and_then(Value::as_str).expect("id");
        client.send(&format!(
            "{{\"id\":\"{id}-replay\",\"trace\":{{\"digest\":\"{}\"}},\"budget\":{{\"misses\":5}}}}",
            digest_of(response)
        ));
        let replay = client.recv();
        assert_eq!(
            replay.get("ok").and_then(Value::as_bool),
            Some(true),
            "digest replay failed: {}",
            replay.render()
        );
        assert_eq!(
            replay.get("frontier").expect("frontier").render(),
            response.get("frontier").expect("frontier").render(),
            "digest replay diverged"
        );
    }

    // The reference: the same batch through a plain single node.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind single");
    let addr_single = listener.local_addr().expect("addr").to_string();
    let node_single = {
        let config = config();
        cachedse_sync::thread::spawn(move || serve(listener, config).expect("single node"))
    };
    await_listening(&addr_single);
    let mut single_client = Client::connect(&addr_single);
    for (seed, sharded_response) in sharded.iter().enumerate() {
        single_client.send(&job_line(&format!("j{seed}"), seed as u64));
        let single_response = single_client.recv();
        assert_eq!(
            canonical(sharded_response),
            canonical(&single_response),
            "job {seed}: sharded and single-node results differ"
        );
    }

    // Tear all three nodes down.
    single_client.send(r#"{"op":"shutdown"}"#);
    let _ = single_client.recv();
    let _ = node_single.join().expect("single node thread");
    let mut client_b = Client::connect(&addr_b);
    client_b.send(r#"{"op":"shutdown"}"#);
    let _ = client_b.recv();
    let stats_b = node_b.join().expect("node b thread");
    client.send(r#"{"op":"shutdown"}"#);
    let _ = client.recv();
    let stats_a = node_a.join().expect("node a thread");

    // Every original job ran exactly once across the pair.
    assert_eq!(stats_a.cache_misses + stats_b.cache_misses, JOBS);
}
