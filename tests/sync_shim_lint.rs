//! Workspace lint: concurrency primitives must go through `cachedse-sync`.
//!
//! The model checker can only explore operations it can see, and it sees
//! them by interposing on the shim in `crates/sync`. A direct
//! `std::sync` mutex/condvar or a raw `std::thread` spawn/scope anywhere
//! else compiles fine and runs fine — and silently removes those
//! interactions from every schedule the explorer enumerates. This test
//! (and its CI twin, `tools/check_sync_shim.sh`) turns that silent gap
//! into a red build.
//!
//! The forbidden patterns are assembled by string concatenation so this
//! file never matches itself.

use std::fs;
use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`, skipping the shim crate
/// itself (the one place the raw primitives are allowed to live).
fn rs_files(dir: &Path, skip: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path == skip {
            continue;
        }
        if path.is_dir() {
            rs_files(&path, skip, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn concurrency_primitives_go_through_the_shim() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sync_crate = root.join("crates").join("sync");

    let std_sync = String::from("std") + "::sync::";
    let std_thread = String::from("std") + "::thread::";
    let forbidden: Vec<String> = vec![
        format!("{std_sync}Mutex"),
        format!("{std_sync}Condvar"),
        format!("{std_thread}spawn"),
        format!("{std_thread}scope"),
    ];

    let mut files = Vec::new();
    for top in ["crates", "tests", "src"] {
        rs_files(&root.join(top), &sync_crate, &mut files);
    }
    assert!(
        files.len() > 20,
        "lint scanned only {} files — workspace layout changed?",
        files.len()
    );

    let mut offenses = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).expect("workspace source is readable");
        for (lineno, line) in text.lines().enumerate() {
            for pat in &forbidden {
                if line.contains(pat.as_str()) {
                    offenses.push(format!(
                        "{}:{}: {}",
                        file.strip_prefix(root).unwrap_or(file).display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        offenses.is_empty(),
        "direct std concurrency primitive use outside crates/sync — route it \
         through the cachedse-sync shim so the model scheduler can see it \
         (DESIGN.md section 14):\n{}",
        offenses.join("\n")
    );
}
