//! Workspace lint: concurrency primitives must go through `cachedse-sync`.
//!
//! The model checker can only explore operations it can see, and it sees
//! them by interposing on the shim in `crates/sync`. A direct
//! `std::sync` mutex/condvar or a raw `std::thread` spawn/scope anywhere
//! else compiles fine and runs fine — and silently removes those
//! interactions from every schedule the explorer enumerates. This test
//! (and its CI twin, `tools/check_sync_shim.sh`) turns that silent gap
//! into a red build.
//!
//! The forbidden patterns are assembled by string concatenation so this
//! file never matches itself.

use std::fs;
use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`, skipping the shim crate
/// itself (the one place the raw primitives are allowed to live).
fn rs_files(dir: &Path, skip: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path == skip {
            continue;
        }
        if path.is_dir() {
            rs_files(&path, skip, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Coverage cross-check: every workspace crate must live inside the
/// `crates/` tree this lint scans and must contribute at least one source
/// file to the scan. A crate declared at another path — or an empty crate
/// directory — would escape the lint silently; this turns that into a red
/// build the moment the crate is added.
#[test]
fn every_workspace_crate_is_inside_the_scanned_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifest = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");

    let mut dep_paths = Vec::new();
    for line in manifest.lines() {
        let Some(rest) = line.trim_start().strip_prefix("cachedse-") else {
            continue;
        };
        if let Some(idx) = rest.find("path = \"") {
            let tail = &rest[idx + "path = \"".len()..];
            let path = tail.split('"').next().expect("closing quote");
            dep_paths.push(path.to_owned());
        }
    }
    assert!(
        dep_paths.len() >= 11,
        "found only {} workspace crate paths — manifest layout changed?",
        dep_paths.len()
    );
    for path in &dep_paths {
        assert!(
            path.starts_with("crates/"),
            "workspace crate at '{path}' is outside crates/ — the sync-shim \
             lint does not scan it; move it or extend the scan here and in \
             tools/check_sync_shim.sh"
        );
    }
    assert!(
        dep_paths.iter().any(|p| p == "crates/store"),
        "the artifact store crate must stay under lint coverage"
    );

    // Every crate directory must actually contribute sources to the scan.
    for entry in fs::read_dir(root.join("crates")).expect("crates/ listing") {
        let dir = entry.expect("crates/ entry").path();
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&dir, Path::new(""), &mut files);
        assert!(
            !files.is_empty(),
            "no .rs sources under {} — the sync-shim lint scanned nothing there",
            dir.display()
        );
    }
}

#[test]
fn concurrency_primitives_go_through_the_shim() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sync_crate = root.join("crates").join("sync");

    let std_sync = String::from("std") + "::sync::";
    let std_thread = String::from("std") + "::thread::";
    // RwLock/Barrier/mpsc have no shim equivalent today; they are listed
    // so new parallel worker code cannot adopt a blocking primitive the
    // model scheduler cannot see without extending the shim first.
    let forbidden: Vec<String> = vec![
        format!("{std_sync}Mutex"),
        format!("{std_sync}Condvar"),
        format!("{std_sync}RwLock"),
        format!("{std_sync}Barrier"),
        format!("{std_sync}mpsc"),
        format!("{std_thread}spawn"),
        format!("{std_thread}scope"),
    ];

    let mut files = Vec::new();
    for top in ["crates", "tests", "src"] {
        rs_files(&root.join(top), &sync_crate, &mut files);
    }
    assert!(
        files.len() > 20,
        "lint scanned only {} files — workspace layout changed?",
        files.len()
    );

    let mut offenses = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).expect("workspace source is readable");
        for (lineno, line) in text.lines().enumerate() {
            for pat in &forbidden {
                if line.contains(pat.as_str()) {
                    offenses.push(format!(
                        "{}:{}: {}",
                        file.strip_prefix(root).unwrap_or(file).display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        offenses.is_empty(),
        "direct std concurrency primitive use outside crates/sync — route it \
         through the cachedse-sync shim so the model scheduler can see it \
         (DESIGN.md section 14):\n{}",
        offenses.join("\n")
    );
}
