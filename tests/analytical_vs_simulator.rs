//! The workspace-level soundness property: the analytical method (both
//! engines) agrees exactly with trace-driven simulation, on random traces
//! and on the instrumented workloads.

use cachedse::core::{dfs, verify, DesignSpaceExplorer, Engine, MissBudget};
use cachedse::sim::onepass::profile_depths;
use cachedse::sim::{simulate, CacheConfig};
use cachedse::trace::rng::SplitMix64;
use cachedse::trace::strip::StrippedTrace;
use cachedse::trace::{generate, Trace};

fn random_trace(rng: &mut SplitMix64, addr_space: u32, max_len: usize) -> Trace {
    use cachedse::trace::{Address, Record};
    let len = rng.gen_range(1usize..max_len);
    (0..len)
        .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
        .collect()
}

/// DFS engine == one-pass simulation on arbitrary traces and depths.
/// Deterministic randomized sweep (formerly a proptest property).
#[test]
fn profiles_match_simulation() {
    let mut rng = SplitMix64::seed_from_u64(0x0DF5);
    for _ in 0..64 {
        let trace = random_trace(&mut rng, 128, 400);
        let max_bits = rng.gen_range(0u32..8);
        let stripped = StrippedTrace::from_trace(&trace);
        assert_eq!(
            dfs::level_profiles(&stripped, max_bits),
            profile_depths(&trace, max_bits)
        );
    }
}

/// Every explored point is within budget and minimal when simulated.
#[test]
fn results_verify() {
    let mut rng = SplitMix64::seed_from_u64(0x5E11F);
    for _ in 0..64 {
        let trace = random_trace(&mut rng, 96, 300);
        let budget = rng.gen_range(0u64..40);
        let result = DesignSpaceExplorer::new(&trace)
            .explore(MissBudget::Absolute(budget))
            .expect("non-empty");
        assert!(verify::check_result(&trace, &result).is_ok());
    }
}

/// Small-parameter versions of several kernels, checked under the paper's
/// budget grid with both engines.
#[test]
fn workload_explorations_verify() {
    use cachedse::workloads::{
        bcnt::Bcnt, crc::Crc, engine::Engine as EngineKernel, fir::Fir, qurt::Qurt, Kernel,
    };
    let runs = [
        Crc {
            message_len: 600,
            passes: 2,
        }
        .capture(),
        Fir {
            taps: 12,
            samples: 600,
        }
        .capture(),
        Bcnt {
            buffer_len: 400,
            passes: 2,
        }
        .capture(),
        EngineKernel { ticks: 400 }.capture(),
        Qurt { equations: 150 }.capture(),
    ];
    for run in &runs {
        for trace in [&run.data, &run.instr] {
            for fraction in [0.05, 0.10, 0.15, 0.20] {
                for engine in [Engine::Streamed, Engine::DepthFirst, Engine::TreeTable] {
                    let result = DesignSpaceExplorer::new(trace)
                        .engine(engine)
                        .explore(MissBudget::FractionOfMax(fraction))
                        .expect("non-empty");
                    verify::check_result(trace, &result)
                        .unwrap_or_else(|e| panic!("{} {engine} K={fraction}: {e}", run.name));
                }
            }
        }
    }
}

/// Spot-check raw miss counts across the design plane on a structured
/// trace.
#[test]
fn miss_counts_match_pointwise() {
    let trace = generate::loop_with_excursions(0, 80, 60, 9, 1 << 11, 17);
    let bits = trace.address_bits();
    let profiles = dfs::level_profiles(&StrippedTrace::from_trace(&trace), bits);
    for profile in &profiles {
        for assoc in [1u32, 2, 3, 5, 8] {
            let config = CacheConfig::lru(profile.depth(), assoc).expect("valid");
            assert_eq!(
                profile.misses_at(assoc),
                simulate(&trace, &config).avoidable_misses(),
                "depth {} assoc {assoc}",
                profile.depth()
            );
        }
    }
}

/// `Trace::dedup_consecutive` is an exact reduction: for every depth and
/// associativity >= 1 the avoidable-miss counts are unchanged (the
/// trace-stripping property of the paper's references [14][15]).
/// Deterministic randomized sweep (formerly a proptest property).
#[test]
fn dedup_preserves_all_miss_counts() {
    let mut rng = SplitMix64::seed_from_u64(0xDED);
    for _ in 0..48 {
        let trace = random_trace(&mut rng, 24, 250);
        let max_bits = rng.gen_range(0u32..5);
        let reduced = trace.dedup_consecutive();
        assert!(reduced.len() <= trace.len());
        let full = dfs::level_profiles(&StrippedTrace::from_trace(&trace), max_bits);
        let small = dfs::level_profiles(&StrippedTrace::from_trace(&reduced), max_bits);
        for (a, b) in full.iter().zip(&small) {
            for assoc in 1..=8u32 {
                assert_eq!(
                    a.misses_at(assoc),
                    b.misses_at(assoc),
                    "depth {} assoc {}",
                    a.depth(),
                    assoc
                );
            }
            assert_eq!(a.cold(), b.cold());
        }
    }
}

/// The associativity tables are monotone: deeper rows and looser budgets
/// never need more ways.
#[test]
fn tables_are_monotone() {
    let trace = generate::working_set_phases(6, 500, 64, 23);
    let exploration = DesignSpaceExplorer::new(&trace)
        .prepare()
        .expect("non-empty");
    let mut prev: Option<Vec<u32>> = None;
    for fraction in [0.05, 0.10, 0.15, 0.20] {
        let result = exploration
            .result(MissBudget::FractionOfMax(fraction))
            .expect("valid fraction");
        let assocs: Vec<u32> = result.pairs().iter().map(|p| p.associativity).collect();
        // Monotone in depth.
        assert!(assocs.windows(2).all(|w| w[1] <= w[0]), "{assocs:?}");
        // Monotone in budget.
        if let Some(prev) = &prev {
            assert!(prev.iter().zip(&assocs).all(|(a, b)| b <= a));
        }
        prev = Some(assocs);
    }
}
