//! Crash-recovery behaviour of the persistent artifact store, end to end:
//! a killed-and-restarted node warm-starts from its `--store-dir`, and a
//! store file truncated or flipped at *any* interesting byte offset —
//! inside the header, mid-arena, inside the trailing checksum — is
//! rejected with a structured error, quarantined, and transparently
//! rebuilt by the next job. No torn file is ever served, and no torn file
//! ever panics the decoder.

use std::path::PathBuf;
use std::sync::Arc;

use cachedse_core::MissBudget;
use cachedse_serve::{Found, JobSpec, PatternSpec, Service, ServiceConfig, TraceSource};
use cachedse_store::{ArtifactKey, ArtifactStore, DiskStore, StoreError, TraceArtifacts};
use cachedse_trace::generate;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cachedse-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(id: &str, budget: u64) -> JobSpec {
    JobSpec {
        id: Some(id.to_owned()),
        trace: TraceSource::Pattern(PatternSpec::Phases {
            phases: 3,
            len: 2_000,
            ws: 128,
            seed: 11,
        }),
        budget: MissBudget::Absolute(budget),
        max_index_bits: None,
        line_bits: 0,
        timeout_ms: None,
    }
}

fn config(dir: &PathBuf) -> ServiceConfig {
    let store: Arc<dyn ArtifactStore> = Arc::new(DiskStore::open(dir).unwrap());
    ServiceConfig {
        workers: 1,
        store: Some(store),
        ..ServiceConfig::default()
    }
}

/// The acceptance scenario: a node killed after one job and restarted
/// over the same `--store-dir` answers the first repeat-trace job with a
/// store hit — no rebuild.
#[test]
fn restarted_service_warm_starts_from_its_store_dir() {
    let dir = tmp_dir("warm-start");

    let first = Service::start(config(&dir));
    let id = first.submit(job("cold", 0)).unwrap();
    let (_, outcome) = first.wait(id);
    let cold = outcome.unwrap();
    assert_eq!(cold.cache, Found::Miss);
    // "Killed": dropped without any graceful artifact handoff — the disk
    // write-through already happened at build time.
    drop(first);

    let second = Service::start(config(&dir));
    let id = second.submit(job("repeat", 0)).unwrap();
    let (_, outcome) = second.wait(id);
    let warm = outcome.unwrap();
    assert_eq!(warm.cache, Found::Warm, "restart must not re-analyze");
    assert_eq!(warm.result, cold.result);
    let stats = second.shutdown();
    assert_eq!(stats.store_hits, 1);
    assert_eq!(stats.cache_misses, 0, "no rebuild after restart");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Truncation at each structurally distinct offset: rejected as
/// `StoreError::Corrupt`, quarantined to `.bad`, then rebuilt cleanly.
#[test]
fn truncated_entries_are_rejected_quarantined_and_rebuilt() {
    let dir = tmp_dir("truncate");
    let trace = generate::working_set_phases(2, 600, 64, 5);
    let key = ArtifactKey::of(&trace, trace.address_bits());
    let artifacts = TraceArtifacts::build(&trace, key.max_index_bits).unwrap();

    let pristine = {
        let store = DiskStore::open(&dir).unwrap();
        store.save(&key, &artifacts).unwrap();
        std::fs::read(store.path_of(&key)).unwrap()
    };
    // Inside the magic/version header, just before the header ends, a few
    // mid-arena cuts, inside the trailing checksum, and the empty file.
    let cuts = [
        0,
        4,
        12,
        pristine.len() / 4,
        pristine.len() / 2,
        pristine.len() - 9,
        pristine.len() - 4,
        pristine.len() - 1,
    ];
    for &cut in &cuts {
        // Each iteration is a fresh "restart" over a directory holding a
        // torn file (the crash happened mid-write on the previous node).
        let store = DiskStore::open(&dir).unwrap();
        let path = store.path_of(&key);
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let err = store
            .load(&key)
            .expect_err(&format!("truncation at {cut} must not decode"));
        assert!(
            matches!(err, StoreError::Corrupt(_)),
            "truncation at {cut}: expected Corrupt, got {err:?}"
        );
        assert!(
            path.with_extension("bad").exists(),
            "truncation at {cut}: torn file not quarantined"
        );
        // The rebuild: a fresh save over the quarantined slot serves again.
        store.save(&key, &artifacts).unwrap();
        assert_eq!(store.load(&key).unwrap().unwrap(), artifacts);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupted (bit-flipped, not truncated) entry is detected by the
/// checksum and rebuilt by the next job through the service — the
/// integration path of the acceptance criterion.
#[test]
fn corrupted_entry_is_detected_and_rebuilt_by_the_next_job() {
    let dir = tmp_dir("flip");

    let first = Service::start(config(&dir));
    let id = first.submit(job("seed", 0)).unwrap();
    first.wait(id).1.unwrap();
    drop(first);

    // Flip one byte in the middle of the only stored entry.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "cdse"))
        .expect("one stored entry");
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&entry, &bytes).unwrap();

    let second = Service::start(config(&dir));
    let id = second.submit(job("rebuild", 0)).unwrap();
    let (_, outcome) = second.wait(id);
    let output = outcome.unwrap();
    // The corrupt load degrades to a rebuild, never an error or a wrong
    // answer.
    assert_eq!(output.cache, Found::Miss);
    assert!(entry.with_extension("bad").exists(), "no quarantine");
    let stats = second.shutdown();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.store_hits, 0);
    // The rebuild wrote through: a third node warm-starts again.
    let third = Service::start(config(&dir));
    let id = third.submit(job("warm", 0)).unwrap();
    let (_, outcome) = third.wait(id);
    assert_eq!(outcome.unwrap().cache, Found::Warm);
    std::fs::remove_dir_all(&dir).unwrap();
}
