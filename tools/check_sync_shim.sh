#!/usr/bin/env sh
# Lint gate: every blocking/concurrency primitive in the workspace must go
# through the `cachedse-sync` shim so the model scheduler can interpose on
# it under `--cfg cachedse_model`. A direct `std::sync::Mutex`,
# `std::sync::Condvar`, `std::sync::RwLock`, `std::sync::Barrier`,
# `std::sync::mpsc` channel, `std::thread::spawn`, or `std::thread::scope`
# outside `crates/sync` is invisible to the schedule explorer and silently
# shrinks the checked surface. The blocking primitives the shim does not
# even offer (RwLock, Barrier, mpsc) are on the list precisely so new
# parallel worker code cannot adopt one without extending the shim first.
#
# The same scan runs as a workspace test (`tests/sync_shim_lint.rs`); this
# script is the CI entry point so the failure is a first-class job.
set -eu
cd "$(dirname "$0")/.."

# The pattern is assembled by concatenation so this script's own text can
# never satisfy it.
SYNC='std::sync'
THREAD='std::thread'
PATTERN="${SYNC}::Mutex|${SYNC}::Condvar|${SYNC}::RwLock|${SYNC}::Barrier"
PATTERN="${PATTERN}|${SYNC}::mpsc|${THREAD}::spawn|${THREAD}::scope"

# Coverage cross-check before the scan: every workspace crate must live
# inside the scanned `crates/` tree and actually contribute sources. A
# crate declared at some other path — or an empty crate directory left by
# a botched move — would otherwise escape the lint silently.
for dep_path in $(grep -E '^cachedse-[a-z-]+ *= *\{ *path *= *"' Cargo.toml \
  | sed -E 's/.*path *= *"([^"]*)".*/\1/'); do
  case "$dep_path" in
    crates/*) ;;
    *)
      echo "workspace crate at '$dep_path' is outside crates/ — the" >&2
      echo "sync-shim lint does not scan it. Move it under crates/ or" >&2
      echo "extend the scan in tools/check_sync_shim.sh AND" >&2
      echo "tests/sync_shim_lint.rs." >&2
      exit 1
      ;;
  esac
done
for crate_dir in crates/*/; do
  if ! find "$crate_dir" -name '*.rs' 2>/dev/null | grep -q .; then
    echo "no .rs sources found under $crate_dir — the sync-shim lint" >&2
    echo "scanned nothing there. Empty crate directories are not allowed." >&2
    exit 1
  fi
done

matches=$(grep -rn --include='*.rs' -E "$PATTERN" crates tests src 2>/dev/null \
  | grep -v '^crates/sync/' || true)

if [ -n "$matches" ]; then
  echo "direct std concurrency primitive use outside crates/sync:" >&2
  echo "$matches" >&2
  echo >&2
  echo "Route it through the cachedse-sync shim (Mutex, Condvar," >&2
  echo "thread::{spawn, scope}) so the model scheduler can see the" >&2
  echo "operation under --cfg cachedse_model. See DESIGN.md section 14." >&2
  exit 1
fi
echo "sync-shim lint clean: all concurrency goes through crates/sync"
