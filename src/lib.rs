//! Façade crate for the `cachedse` workspace — analytical design space
//! exploration of caches for embedded systems (Ghosh & Givargis, DATE 2003).
//!
//! Re-exports the public APIs of the workspace crates so downstream users can
//! depend on one crate:
//!
//! * [`bitset`] — dense bitsets ([`cachedse_bitset`]);
//! * [`trace`] — memory-reference traces ([`cachedse_trace`]);
//! * [`sim`] — the trace-driven cache simulator ([`cachedse_sim`]);
//! * [`core`] — the analytical explorer, the paper's contribution
//!   ([`cachedse_core`]);
//! * [`cost`] — energy/area/timing models and energy-aware selection
//!   ([`cachedse_cost`]);
//! * [`workloads`] — PowerStone-style embedded kernels ([`cachedse_workloads`]);
//! * [`check`] — static invariant verification of every pipeline artifact
//!   ([`cachedse_check`]).
//!
//! # Quickstart
//!
//! ```
//! use cachedse::core::{DesignSpaceExplorer, MissBudget};
//! use cachedse::workloads::{self, Kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate the FIR filter workload's data trace and find, for every cache
//! // depth, the minimum associativity keeping non-cold misses under 10% of
//! // the worst case.
//! let run = workloads::fir::Fir { taps: 16, samples: 512 }.capture();
//! let result = DesignSpaceExplorer::new(&run.data)
//!     .explore(MissBudget::FractionOfMax(0.10))?;
//! for pair in result.pairs() {
//!     println!("depth {:5} rows -> {}-way", pair.depth, pair.associativity);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cachedse_bitset as bitset;
pub use cachedse_check as check;
pub use cachedse_core as core;
pub use cachedse_cost as cost;
pub use cachedse_sim as sim;
pub use cachedse_trace as trace;
pub use cachedse_workloads as workloads;
